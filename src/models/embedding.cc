#include "models/embedding.h"

#include <vector>

#include "nn/init.h"
#include "nn/ops.h"

namespace imsr::models {
namespace {

// Reusable per-thread index buffer: lookups run once per graph op and the
// result is consumed before the next call, so borrowing one scratch
// vector keeps the hot training path free of per-lookup allocations.
const std::vector<int64_t>& ToIndices(
    const std::vector<data::ItemId>& items) {
  thread_local std::vector<int64_t> indices;
  indices.clear();
  indices.reserve(items.size());
  for (data::ItemId item : items) indices.push_back(item);
  return indices;
}

}  // namespace

EmbeddingTable::EmbeddingTable(int64_t num_items, int64_t dim,
                               util::Rng& rng)
    : num_items_(num_items),
      dim_(dim),
      table_(nn::EmbeddingInit(num_items, dim, rng),
             /*requires_grad=*/true) {}

nn::Var EmbeddingTable::Lookup(
    const std::vector<data::ItemId>& items) const {
  return nn::ops::GatherRows(table_, ToIndices(items));
}

nn::Var EmbeddingTable::LookupOne(data::ItemId item) const {
  thread_local std::vector<int64_t> index(1);
  index[0] = item;
  return nn::ops::Reshape(nn::ops::GatherRows(table_, index), {dim_});
}

nn::Tensor EmbeddingTable::LookupNoGrad(
    const std::vector<data::ItemId>& items) const {
  return nn::GatherRows(table_.value(), ToIndices(items));
}

nn::Tensor EmbeddingTable::RowNoGrad(data::ItemId item) const {
  return table_.value().Row(item);
}

void EmbeddingTable::Reset(util::Rng& rng) {
  table_.mutable_value() = nn::EmbeddingInit(num_items_, dim_, rng);
  table_.ZeroGrad();
}

void EmbeddingTable::Save(util::BinaryWriter* writer) const {
  writer->WriteInt64(num_items_);
  writer->WriteInt64(dim_);
  writer->WriteFloatArray(table_.value().data(),
                          static_cast<size_t>(table_.value().numel()));
}

bool EmbeddingTable::Load(util::BinaryReader* reader, std::string* error) {
  int64_t rows = 0;
  int64_t dim = 0;
  if (!reader->TryReadInt64(&rows) || !reader->TryReadInt64(&dim)) {
    *error = reader->error();
    return false;
  }
  if (rows != num_items_ || dim != dim_) {
    *error = "embedding table shape mismatch: checkpoint has (" +
             std::to_string(rows) + " x " + std::to_string(dim) +
             "), model expects (" + std::to_string(num_items_) + " x " +
             std::to_string(dim_) + ")";
    return false;
  }
  nn::Tensor table({num_items_, dim_});
  if (!reader->TryReadFloatArray(table.data(),
                                 static_cast<size_t>(table.numel()))) {
    *error = reader->error();
    return false;
  }
  table_.mutable_value() = std::move(table);
  return true;
}

void EmbeddingTable::CopyFrom(const EmbeddingTable& other) {
  IMSR_CHECK_EQ(other.num_items_, num_items_);
  IMSR_CHECK_EQ(other.dim_, dim_);
  table_.mutable_value() = other.table_.value();
}

}  // namespace imsr::models
