// Multi-interest extractor interface (Eq. 1): maps a user's interacted
// item embeddings to K interest vectors. Implementations: MIND,
// ComiRec-DR (dynamic routing) and ComiRec-SA (self-attention).
#ifndef IMSR_MODELS_EXTRACTOR_H_
#define IMSR_MODELS_EXTRACTOR_H_

#include <vector>

#include "data/interaction.h"
#include "nn/optim.h"
#include "nn/variable.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace imsr::models {

enum class ExtractorKind { kMind, kComiRecDr, kComiRecSa };

const char* ExtractorKindName(ExtractorKind kind);
// Fallible parse of a kind name ("MIND"/"mind", "ComiRec-DR"/"dr",
// "ComiRec-SA"/"sa"). On an unknown name returns false and fills `error`
// (if non-null) with the valid spellings instead of aborting, so CLI /
// bench flag typos surface as clean usage errors.
bool ExtractorKindFromName(const std::string& name, ExtractorKind* kind,
                           std::string* error);

class MultiInterestExtractor {
 public:
  virtual ~MultiInterestExtractor() = default;

  virtual ExtractorKind kind() const = 0;

  // Graph-building forward. `item_embeddings` is the (n x d) Var of the
  // user's interacted items; `interest_init` the user's stored interest
  // vectors (K x d) that carry interests across spans (routing-logit seed
  // for DR models, interest count for SA). Returns the (K x d) interest
  // matrix Var.
  virtual nn::Var Forward(const nn::Var& item_embeddings,
                          const nn::Tensor& interest_init,
                          data::UserId user) = 0;

  // Batched graph-building forward over samples that share one
  // concatenated item-embedding gather: sample b's history embeddings
  // are rows [offsets[b], offsets[b+1]) of `flat_item_embeddings`.
  // Appends one (K x d) interest Var per sample to `out`. The default
  // peels a row slice per sample and delegates to Forward; extractors
  // whose forward opens with a shared row-wise transform (ComiRec-DR)
  // override it to run the whole batch through that op once. With a
  // single sample the flat Var is passed through untouched, so the
  // graph is node-for-node the one Forward builds — the batch_size=1
  // bitwise contract (DESIGN.md section 11) extends through this hook.
  virtual void ForwardBatch(
      const nn::Var& flat_item_embeddings,
      const std::vector<int64_t>& offsets,
      const std::vector<const nn::Tensor*>& interest_inits,
      const std::vector<data::UserId>& users, std::vector<nn::Var>* out);

  // True when the extractor implements ForwardReprBatch. Callers that
  // only need the per-sample user representations (not the interest
  // matrices themselves) check this to take the fused readout path.
  virtual bool SupportsFusedRepr() const { return false; }

  // Fused batched forward straight to the per-sample user representation
  // v_b = AttentiveAggregate(interests_b, target_b) (Eq. 5), one graph
  // node per sample instead of the interest-matrix chain — the fast path
  // of the batched trainer (DESIGN.md section 11). Sample b's history
  // embeddings are rows [offsets[b], offsets[b+1]) of
  // `flat_item_embeddings`; its target embedding is row b of
  // `target_embeddings`. Appends one (d) Var per sample to `reprs`, with
  // values and gradients bitwise identical to ForwardBatch +
  // AttentiveAggregate. Only callable when SupportsFusedRepr(); the
  // default aborts.
  virtual void ForwardReprBatch(
      const nn::Var& flat_item_embeddings,
      const std::vector<int64_t>& offsets,
      const std::vector<const nn::Tensor*>& interest_inits,
      const std::vector<data::UserId>& users,
      const nn::Var& target_embeddings, std::vector<nn::Var>* reprs);

  // No-grad forward used by interests expansion / NID / PIT / evaluation.
  virtual nn::Tensor ForwardNoGrad(const nn::Tensor& item_embeddings,
                                   const nn::Tensor& interest_init,
                                   data::UserId user) = 0;

  // Shared (non-per-user) trainable parameters.
  virtual std::vector<nn::Var> SharedParameters() = 0;

  // Per-user capacity maintenance for extractors with per-user parameters
  // (ComiRec-SA's W_u). `optimizer` may be null; when set, newly created
  // parameters are registered and replaced ones unregistered.
  //
  // Grows (or creates) the user's capacity to `num_interests`. Default:
  // no-op (DR models carry interests in the InterestStore, not in
  // parameters).
  virtual void EnsureUserCapacity(data::UserId /*user*/,
                                  int64_t /*num_interests*/,
                                  util::Rng& /*rng*/,
                                  nn::Optimizer* /*optimizer*/) {}
  // Shrinks the user's capacity to the given kept interest indices.
  // Default: no-op.
  virtual void KeepUserInterests(data::UserId /*user*/,
                                 const std::vector<int64_t>& /*kept*/,
                                 nn::Optimizer* /*optimizer*/) {}

  // Re-initialises all parameters (full retraining).
  virtual void Reset(util::Rng& rng) = 0;

  virtual void Save(util::BinaryWriter* writer) const = 0;
  // Fallible restore: on corrupt input returns false with a description in
  // `error` (the extractor may be partially overwritten — callers wanting
  // all-or-nothing load into a staging extractor and CopyStateFrom it).
  virtual bool Load(util::BinaryReader* reader, std::string* error) = 0;
  // Copies all learned state from `other`, which must be the same kind and
  // dimensions (checked).
  virtual void CopyStateFrom(const MultiInterestExtractor& other) = 0;
};

}  // namespace imsr::models

#endif  // IMSR_MODELS_EXTRACTOR_H_
