// Item embedding table — the shared bottom layer of every MSR model.
#ifndef IMSR_MODELS_EMBEDDING_H_
#define IMSR_MODELS_EMBEDDING_H_

#include <vector>

#include "data/interaction.h"
#include "nn/variable.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace imsr::models {

class EmbeddingTable {
 public:
  EmbeddingTable(int64_t num_items, int64_t dim, util::Rng& rng);

  int64_t num_items() const { return num_items_; }
  int64_t dim() const { return dim_; }

  // The trainable parameter (num_items x dim).
  nn::Var& parameter() { return table_; }
  const nn::Var& parameter() const { return table_; }

  // Graph-building lookup of a batch of items -> (n x dim) Var.
  nn::Var Lookup(const std::vector<data::ItemId>& items) const;

  // Graph-building lookup of one item -> (dim) Var. Equivalent to
  // Reshape(Lookup({item}), {dim}) without the per-call vector.
  nn::Var LookupOne(data::ItemId item) const;

  // No-grad lookup -> (n x dim) Tensor.
  nn::Tensor LookupNoGrad(const std::vector<data::ItemId>& items) const;
  // No-grad lookup of a single item -> (dim) Tensor.
  nn::Tensor RowNoGrad(data::ItemId item) const;

  // Re-initialises the table in place (used by full retraining).
  void Reset(util::Rng& rng);

  void Save(util::BinaryWriter* writer) const;
  // Fallible restore; returns false with a description on corrupt input or
  // shape mismatch, leaving the table unchanged.
  bool Load(util::BinaryReader* reader, std::string* error);
  // Copies the table values from `other` (same shape, checked) without
  // replacing the parameter handle.
  void CopyFrom(const EmbeddingTable& other);

 private:
  int64_t num_items_;
  int64_t dim_;
  nn::Var table_;
};

}  // namespace imsr::models

#endif  // IMSR_MODELS_EMBEDDING_H_
