// Self-attention multi-interest extractor (§III-2, Eq. 7–9): a shared
// projection W1 plus a *per-user* query matrix W_u whose K columns are the
// user's interest heads. Interests expansion grows/shrinks W_u's columns.
#ifndef IMSR_MODELS_COMIREC_SA_H_
#define IMSR_MODELS_COMIREC_SA_H_

#include <unordered_map>
#include <vector>

#include "models/extractor.h"

namespace imsr::models {

class SelfAttentionExtractor : public MultiInterestExtractor {
 public:
  SelfAttentionExtractor(int64_t embedding_dim, int64_t attention_dim,
                         util::Rng& rng);

  ExtractorKind kind() const override { return ExtractorKind::kComiRecSa; }

  nn::Var Forward(const nn::Var& item_embeddings,
                  const nn::Tensor& interest_init,
                  data::UserId user) override;

  nn::Tensor ForwardNoGrad(const nn::Tensor& item_embeddings,
                           const nn::Tensor& interest_init,
                           data::UserId user) override;

  std::vector<nn::Var> SharedParameters() override { return {w1_}; }

  void EnsureUserCapacity(data::UserId user, int64_t num_interests,
                          util::Rng& rng, nn::Optimizer* optimizer) override;
  void KeepUserInterests(data::UserId user,
                         const std::vector<int64_t>& kept,
                         nn::Optimizer* optimizer) override;

  void Reset(util::Rng& rng) override;

  void Save(util::BinaryWriter* writer) const override;
  bool Load(util::BinaryReader* reader, std::string* error) override;
  void CopyStateFrom(const MultiInterestExtractor& other) override;

  // Interest-head count currently allocated for `user` (0 when absent).
  int64_t UserCapacity(data::UserId user) const;
  // The user's query parameter; aborts when absent.
  const nn::Var& UserQuery(data::UserId user) const;

 private:
  nn::Tensor RandomQueryColumns(int64_t columns, util::Rng& rng) const;

  int64_t embedding_dim_;
  int64_t attention_dim_;
  nn::Var w1_;  // (d x d_a), Eq. 7's W1 stored transposed for row-major E
  std::unordered_map<data::UserId, nn::Var> user_query_;  // (d_a x K_u)
};

}  // namespace imsr::models

#endif  // IMSR_MODELS_COMIREC_SA_H_
