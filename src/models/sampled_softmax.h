// Sampled-softmax objective (Eq. 6).
#ifndef IMSR_MODELS_SAMPLED_SOFTMAX_H_
#define IMSR_MODELS_SAMPLED_SOFTMAX_H_

#include <vector>

#include "nn/variable.h"

namespace imsr::models {

// `user_repr` (d) is v_u from Eq. 5; `candidates` ((1+N) x d) stacks the
// positive item embedding in row 0 followed by N sampled negatives.
// Returns the scalar -log softmax(candidates . v)[0].
nn::Var SampledSoftmaxLoss(const nn::Var& user_repr,
                           const nn::Var& candidates);

// Minibatched form: `user_reprs` holds B per-sample representations v_b
// (each (d)); `candidates` ((B*C) x d) packs every sample's candidate
// block contiguously, positive first, with C = `candidates_per_sample`.
// Returns the scalar sum_b -log softmax(block_b . v_b)[0] as ONE graph
// node (parents: candidates, then each v_b), replacing 2B nodes of the
// per-sample path. Per-sample arithmetic — row dots, logsumexp, softmax,
// backward outer-product/saxpy loops and their accumulation order — is
// identical to SampledSoftmaxLoss, so at B == 1 the loss value and every
// gradient it feeds upstream are bitwise identical to the per-sample op.
nn::Var SampledSoftmaxBatchLoss(const std::vector<nn::Var>& user_reprs,
                                const nn::Var& candidates,
                                int64_t candidates_per_sample);

}  // namespace imsr::models

#endif  // IMSR_MODELS_SAMPLED_SOFTMAX_H_
