// Sampled-softmax objective (Eq. 6).
#ifndef IMSR_MODELS_SAMPLED_SOFTMAX_H_
#define IMSR_MODELS_SAMPLED_SOFTMAX_H_

#include "nn/variable.h"

namespace imsr::models {

// `user_repr` (d) is v_u from Eq. 5; `candidates` ((1+N) x d) stacks the
// positive item embedding in row 0 followed by N sampled negatives.
// Returns the scalar -log softmax(candidates . v)[0].
nn::Var SampledSoftmaxLoss(const nn::Var& user_repr,
                           const nn::Var& candidates);

}  // namespace imsr::models

#endif  // IMSR_MODELS_SAMPLED_SOFTMAX_H_
