#include "models/diversity.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace imsr::models {

std::vector<std::pair<data::ItemId, float>> ControllableRerank(
    const std::vector<std::pair<data::ItemId, float>>& candidates,
    const std::vector<int>& item_category, const DiversityConfig& config) {
  IMSR_CHECK_GT(config.top_n, 0);
  IMSR_CHECK_GE(config.lambda, 0.0);

  std::vector<bool> used(candidates.size(), false);
  std::unordered_set<int> covered_categories;
  std::vector<std::pair<data::ItemId, float>> selected;
  const size_t keep =
      std::min(static_cast<size_t>(config.top_n), candidates.size());
  selected.reserve(keep);

  while (selected.size() < keep) {
    double best_value = -1e300;
    size_t best_index = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      const auto [item, score] = candidates[i];
      IMSR_CHECK(item >= 0 &&
                 static_cast<size_t>(item) < item_category.size());
      const int category = item_category[static_cast<size_t>(item)];
      const double bonus =
          covered_categories.count(category) == 0 ? config.lambda : 0.0;
      const double value = static_cast<double>(score) + bonus;
      if (value > best_value) {
        best_value = value;
        best_index = i;
      }
    }
    if (best_index == candidates.size()) break;
    used[best_index] = true;
    const auto [item, score] = candidates[best_index];
    covered_categories.insert(item_category[static_cast<size_t>(item)]);
    selected.push_back(candidates[best_index]);
  }
  return selected;
}

double ListDiversity(
    const std::vector<std::pair<data::ItemId, float>>& items,
    const std::vector<int>& item_category) {
  if (items.size() < 2) return 0.0;
  int64_t different = 0;
  int64_t pairs = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      ++pairs;
      const int ci = item_category[static_cast<size_t>(items[i].first)];
      const int cj = item_category[static_cast<size_t>(items[j].first)];
      if (ci != cj) ++different;
    }
  }
  return static_cast<double>(different) / static_cast<double>(pairs);
}

}  // namespace imsr::models
