// Autograd op library. Every function builds a graph node whose backward
// closure distributes gradients to its parents. Ops accept constants as
// Vars with requires_grad == false; gradient work for such parents is
// skipped.
#ifndef IMSR_NN_OPS_H_
#define IMSR_NN_OPS_H_

#include <vector>

#include "nn/variable.h"

namespace imsr::nn::ops {

// ---- Elementwise arithmetic (shapes must match) ----
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
// alpha * a
Var Scale(const Var& a, float alpha);
// a + alpha (elementwise)
Var AddScalar(const Var& a, float alpha);

// ---- Linear algebra ----
// (m x k) * (k x n) -> (m x n)
Var MatMul(const Var& a, const Var& b);
// (m x k) * (k) -> (m)
Var MatVec(const Var& a, const Var& x);
// a^T x for a (m x k) and x (m) -> (k). Fuses MatVec(Transpose(a), x):
// same accumulation order, so bitwise identical, with no materialised
// transpose in either the forward or the backward pass.
Var MatVecTransA(const Var& a, const Var& x);
// a^T b for a (r x m) and b (r x n) -> (m x n). Fuses
// MatMul(Transpose(a), b) the same way.
Var MatMulTransA(const Var& a, const Var& b);
// 2-D transpose.
Var Transpose(const Var& a);
// Flattened dot product -> scalar (1-element tensor).
Var Dot(const Var& a, const Var& b);
// Same data, new shape; gradient reshapes back.
Var Reshape(const Var& a, Shape shape);

// a / s where `s` is a 1-element Var (scalar division, used by the
// linear-attention baseline's normalisation).
Var DivByScalar(const Var& a, const Var& s);

// Scales each row i of `a` (m x d) by scale[i]; `scale` is (m) or (m x 1).
// Row-wise broadcast multiply (used by SML's per-row gating).
Var ScaleRows(const Var& a, const Var& scale);

// ---- Reductions ----
Var Sum(const Var& a);         // -> scalar
Var Mean(const Var& a);        // -> scalar
Var SumSquares(const Var& a);  // -> scalar, sum of squared entries

// ---- Nonlinearities ----
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Exp(const Var& a);
Var Relu(const Var& a);
// Row-wise softmax (2-D) or softmax of a vector (1-D).
Var Softmax(const Var& a);
// Capsule squash per row: (|v|^2 / (1+|v|^2)) v / |v|.
Var SquashRows(const Var& a);

// ---- Structural ----
// Gathers rows of a 2-D table; backward scatter-adds into the table.
Var GatherRows(const Var& table, const std::vector<int64_t>& indices);
// Concatenates 2-D (or 1-D, treated as single-row) Vars along rows.
Var ConcatRows(const std::vector<Var>& parts);
// Rows [begin, end) of a 2-D tensor.
Var RowSlice(const Var& a, int64_t begin, int64_t end);
// Row i of a 2-D tensor as a 1-D vector.
Var RowVector(const Var& a, int64_t i);

// ---- Losses ----
// -log softmax(scores)[target]; `scores` is 1-D. Used for the sampled
// softmax objective (Eq. 6) with the positive at `target`.
Var NegLogSoftmax(const Var& scores, int64_t target);

// Sigmoid knowledge-distillation loss (Eq. 10 with the sigmoid form of
// [Wang et al. 2020]): sum_k BCE(sigmoid(student_k / tau),
// sigmoid-teacher probability teacher_probs[k]). `teacher_probs` are
// constants already passed through sigmoid(: / tau).
Var KdSigmoidCrossEntropy(const Var& student_logits,
                          const Tensor& teacher_probs, float tau);

// Softmax knowledge-distillation loss: -sum_k p_k log softmax(s / tau)_k
// where p = softmax(teacher / tau) is precomputed by the caller. Used by
// the KD1/KD2/KD3 ablation variants.
Var KdSoftmaxCrossEntropy(const Var& student_logits,
                          const Tensor& teacher_probs, float tau);

}  // namespace imsr::nn::ops

#endif  // IMSR_NN_OPS_H_
