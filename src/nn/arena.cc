#include "nn/arena.h"

namespace imsr::nn {
namespace {

thread_local GraphArena* t_current_arena = nullptr;
thread_local int t_no_grad_depth = 0;

size_t AlignUp(size_t value, size_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace

GraphArena::GraphArena(size_t block_bytes) : block_bytes_(block_bytes) {
  IMSR_CHECK_GT(block_bytes_, 0u);
}

void* GraphArena::Allocate(size_t bytes, size_t alignment) {
  IMSR_DCHECK(alignment > 0 && (alignment & (alignment - 1)) == 0);
  bytes = AlignUp(bytes == 0 ? 1 : bytes, alignment);
  for (;;) {
    if (current_block_ < blocks_.size()) {
      Block& block = blocks_[current_block_];
      const size_t begin = AlignUp(offset_, alignment);
      if (begin + bytes <= block.size) {
        offset_ = begin + bytes;
        ++live_;
        used_bytes_ += bytes;
        if (used_bytes_ > high_water_) high_water_ = used_bytes_;
        return block.data.get() + begin;
      }
      ++current_block_;
      offset_ = 0;
      continue;
    }
    // Warm-up: grow by one block (oversized requests get a dedicated
    // block). Blocks persist across Reset(), so a steady-state step never
    // reaches this path again.
    Block block;
    block.size = bytes > block_bytes_ ? bytes : block_bytes_;
    block.data = std::make_unique<char[]>(block.size);
    blocks_.push_back(std::move(block));
    current_block_ = blocks_.size() - 1;
    offset_ = 0;
  }
}

void GraphArena::Deallocate(void* /*ptr*/, size_t bytes) {
  IMSR_DCHECK(live_ > 0);
  --live_;
  // `bytes` may be smaller than the aligned charge; used_bytes_ is a
  // high-water heuristic, not an exact ledger, so saturate at zero.
  used_bytes_ = used_bytes_ > bytes ? used_bytes_ - bytes : 0;
  if (reset_pending_ && live_ == 0) DoReset();
}

void GraphArena::Reset() {
  if (live_ == 0) {
    DoReset();
  } else {
    reset_pending_ = true;
  }
}

void GraphArena::DoReset() {
  current_block_ = 0;
  offset_ = 0;
  used_bytes_ = 0;
  reset_pending_ = false;
}

size_t GraphArena::capacity_bytes() const {
  size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

GraphArena* CurrentGraphArena() { return t_current_arena; }

GraphArenaScope::GraphArenaScope(GraphArena* arena)
    : previous_(t_current_arena) {
  t_current_arena = arena;
}

GraphArenaScope::~GraphArenaScope() { t_current_arena = previous_; }

bool GradEnabled() { return t_no_grad_depth == 0; }

NoGradGuard::NoGradGuard() { ++t_no_grad_depth; }

NoGradGuard::~NoGradGuard() { --t_no_grad_depth; }

}  // namespace imsr::nn
