#include "nn/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace imsr::nn {

GradCheckResult CheckGradients(const std::function<Var()>& forward,
                               std::vector<Var> parameters,
                               double epsilon, double tolerance) {
  GradCheckResult result;
  result.ok = true;

  // Analytic pass.
  for (Var& p : parameters) p.ZeroGrad();
  Var loss = forward();
  loss.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(parameters.size());
  for (const Var& p : parameters) {
    analytic.push_back(p.has_grad() ? p.grad()
                                    : Tensor::Zeros(p.value().shape()));
  }

  // Numeric pass.
  for (size_t pi = 0; pi < parameters.size(); ++pi) {
    Tensor& value = parameters[pi].mutable_value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      const float original = value.data()[i];
      value.data()[i] = original + static_cast<float>(epsilon);
      const double f_plus = static_cast<double>(forward().value().item());
      value.data()[i] = original - static_cast<float>(epsilon);
      const double f_minus = static_cast<double>(forward().value().item());
      value.data()[i] = original;

      const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
      const double exact = static_cast<double>(analytic[pi].data()[i]);
      const double abs_err = std::fabs(numeric - exact);
      const double denom = std::max({std::fabs(numeric), std::fabs(exact),
                                     1e-8});
      const double rel_err = abs_err / denom;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (abs_err > tolerance && rel_err > tolerance) {
        result.ok = false;
      }
    }
  }
  return result;
}

}  // namespace imsr::nn
