// First-order optimisers over Var parameters. Parameters are registered
// explicitly; Step() applies the update using each parameter's accumulated
// gradient and then the caller is expected to ZeroGradAll() before the next
// batch.
#ifndef IMSR_NN_OPTIM_H_
#define IMSR_NN_OPTIM_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "nn/variable.h"

namespace imsr::nn {

// Common interface so trainers can swap optimisers.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Adds a parameter (idempotent). The Var must require gradients.
  virtual void Register(const Var& parameter);

  // Drops a parameter and its state (used when per-user parameters are
  // replaced during interests expansion).
  virtual void Unregister(const Var& parameter);

  // Applies one update to every registered parameter that has a gradient.
  virtual void Step() = 0;

  // Clears gradients on all registered parameters.
  void ZeroGradAll();

  size_t num_parameters() const { return parameters_.size(); }

 protected:
  std::vector<Var> parameters_;
  std::unordered_map<VarNode*, size_t> index_;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float learning_rate) : learning_rate_(learning_rate) {}
  void Step() override;

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

 private:
  float learning_rate_;
};

class Adam : public Optimizer {
 public:
  struct Config {
    float learning_rate = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
  };

  explicit Adam(const Config& config) : config_(config) {}
  explicit Adam(float learning_rate) : config_{learning_rate} {}

  void Unregister(const Var& parameter) override;
  void Step() override;

  const Config& config() const { return config_; }
  void set_learning_rate(float lr) { config_.learning_rate = lr; }

 private:
  struct State {
    Tensor m;
    Tensor v;
    int64_t step = 0;
  };
  Config config_;
  std::unordered_map<VarNode*, State> state_;
};

}  // namespace imsr::nn

#endif  // IMSR_NN_OPTIM_H_
