#include "nn/optim.h"

#include <cmath>

#include "util/thread_pool.h"

namespace imsr::nn {
namespace {

// Elementwise updates below this size run inline; above it (embedding
// tables) the range goes through the pool. Disjoint element ranges keep
// the update bitwise identical for any thread count.
constexpr int64_t kParallelElements = 1 << 15;

void ParallelElementwise(int64_t count, util::RangeFn fn) {
  if (count >= kParallelElements) {
    util::GlobalPool().ParallelFor(count, /*grain=*/0, fn);
  } else {
    fn(0, count);
  }
}

}  // namespace

void Optimizer::Register(const Var& parameter) {
  IMSR_CHECK(parameter.defined());
  IMSR_CHECK(parameter.requires_grad())
      << "optimiser parameters must require gradients";
  VarNode* key = parameter.node().get();
  if (index_.count(key) > 0) return;
  index_[key] = parameters_.size();
  parameters_.push_back(parameter);
}

void Optimizer::Unregister(const Var& parameter) {
  VarNode* key = parameter.node().get();
  auto it = index_.find(key);
  if (it == index_.end()) return;
  const size_t pos = it->second;
  index_.erase(it);
  if (pos + 1 != parameters_.size()) {
    parameters_[pos] = parameters_.back();
    index_[parameters_[pos].node().get()] = pos;
  }
  parameters_.pop_back();
}

void Optimizer::ZeroGradAll() {
  for (Var& parameter : parameters_) parameter.ZeroGrad();
}

void Sgd::Step() {
  for (Var& parameter : parameters_) {
    if (!parameter.has_grad()) continue;
    float* value = parameter.mutable_value().data();
    const float* g = parameter.grad().data();
    const float lr = learning_rate_;
    ParallelElementwise(
        parameter.value().numel(), [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) value[i] -= lr * g[i];
        });
  }
}

void Adam::Unregister(const Var& parameter) {
  state_.erase(parameter.node().get());
  Optimizer::Unregister(parameter);
}

void Adam::Step() {
  for (Var& parameter : parameters_) {
    if (!parameter.has_grad()) continue;
    State& state = state_[parameter.node().get()];
    if (!state.m.defined()) {
      state.m = Tensor::Zeros(parameter.value().shape());
      state.v = Tensor::Zeros(parameter.value().shape());
    }
    state.step += 1;
    const Tensor& grad = parameter.grad();
    float* m = state.m.data();
    float* v = state.v.data();
    float* value = parameter.mutable_value().data();
    const float* g = grad.data();
    const float b1 = config_.beta1;
    const float b2 = config_.beta2;
    const float bias1 =
        1.0f - std::pow(b1, static_cast<float>(state.step));
    const float bias2 =
        1.0f - std::pow(b2, static_cast<float>(state.step));
    const float lr = config_.learning_rate;
    const float eps = config_.epsilon;
    ParallelElementwise(grad.numel(), [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        m[i] = b1 * m[i] + (1.0f - b1) * g[i];
        v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
        const float m_hat = m[i] / bias1;
        const float v_hat = v[i] / bias2;
        value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      }
    });
  }
}

}  // namespace imsr::nn
