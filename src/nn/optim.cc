#include "nn/optim.h"

#include <cmath>

#include "nn/simd.h"
#include "util/hot.h"
#include "util/thread_pool.h"

namespace imsr::nn {
namespace {

// Elementwise updates below this size run inline; above it (embedding
// tables) the range goes through the pool. Disjoint element ranges keep
// the update bitwise identical for any thread count.
constexpr int64_t kParallelElements = 1 << 15;

void ParallelElementwise(int64_t count, util::RangeFn fn) {
  if (count >= kParallelElements) {
    util::GlobalPool().ParallelFor(count, /*grain=*/0, fn);
  } else {
    fn(0, count);
  }
}

// One Adam update span, extracted from the Step lambda so the loop can
// carry the multi-versioning attribute (clones attach to functions, not
// lambdas). Order-preserving: element i's operation chain never changes.
IMSR_SIMD_CLONES
void AdamUpdateSpan(float* __restrict__ m, float* __restrict__ v,
                    float* __restrict__ value, const float* __restrict__ g,
                    float b1, float b2, float bias1, float bias2, float lr,
                    float eps, int64_t begin, int64_t end) {
  IMSR_SIMD_PRAGMA()
  for (int64_t i = begin; i < end; ++i) {
    m[i] = b1 * m[i] + (1.0f - b1) * g[i];
    v[i] = b2 * v[i] + (1.0f - b2) * g[i] * g[i];
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace

void Optimizer::Register(const Var& parameter) {
  IMSR_CHECK(parameter.defined());
  IMSR_CHECK(parameter.requires_grad())
      << "optimiser parameters must require gradients";
  VarNode* key = parameter.node().get();
  if (index_.count(key) > 0) return;
  index_[key] = parameters_.size();
  parameters_.push_back(parameter);
}

void Optimizer::Unregister(const Var& parameter) {
  VarNode* key = parameter.node().get();
  auto it = index_.find(key);
  if (it == index_.end()) return;
  const size_t pos = it->second;
  index_.erase(it);
  if (pos + 1 != parameters_.size()) {
    parameters_[pos] = parameters_.back();
    index_[parameters_[pos].node().get()] = pos;
  }
  parameters_.pop_back();
}

void Optimizer::ZeroGradAll() {
  for (Var& parameter : parameters_) parameter.ZeroGrad();
}

// Both update rules are elementwise: each parameter's new value is an
// independent chain of scalar ops (mul/add/div/sqrt, all IEEE
// correctly-rounded), so the simd annotation cannot change a bit — no
// scalar fallback needed. IMSR_HOT because GCC's -O2 cost model
// otherwise declines these runtime-trip-count loops.
IMSR_HOT_BEGIN
void Sgd::Step() {
  for (Var& parameter : parameters_) {
    if (!parameter.has_grad()) continue;
    float* __restrict__ value = parameter.mutable_value().data();
    const float* __restrict__ g = parameter.grad().data();
    const float lr = learning_rate_;
    ParallelElementwise(
        parameter.value().numel(), [&](int64_t begin, int64_t end) {
          IMSR_SIMD_PRAGMA()
          for (int64_t i = begin; i < end; ++i) value[i] -= lr * g[i];
        });
  }
}
IMSR_HOT_END

void Adam::Unregister(const Var& parameter) {
  state_.erase(parameter.node().get());
  Optimizer::Unregister(parameter);
}

IMSR_HOT_BEGIN
void Adam::Step() {
  for (Var& parameter : parameters_) {
    if (!parameter.has_grad()) continue;
    State& state = state_[parameter.node().get()];
    if (!state.m.defined()) {
      state.m = Tensor::Zeros(parameter.value().shape());
      state.v = Tensor::Zeros(parameter.value().shape());
    }
    state.step += 1;
    const Tensor& grad = parameter.grad();
    float* __restrict__ m = state.m.data();
    float* __restrict__ v = state.v.data();
    float* __restrict__ value = parameter.mutable_value().data();
    const float* __restrict__ g = grad.data();
    const float b1 = config_.beta1;
    const float b2 = config_.beta2;
    const float bias1 =
        1.0f - std::pow(b1, static_cast<float>(state.step));
    const float bias2 =
        1.0f - std::pow(b2, static_cast<float>(state.step));
    const float lr = config_.learning_rate;
    const float eps = config_.epsilon;
    ParallelElementwise(grad.numel(), [&](int64_t begin, int64_t end) {
      AdamUpdateSpan(m, v, value, g, b1, b2, bias1, bias2, lr, eps, begin,
                     end);
    });
  }
}
IMSR_HOT_END

}  // namespace imsr::nn
