// Numeric gradient checking used by the autograd test-suite: compares
// analytic gradients against central finite differences.
#ifndef IMSR_NN_GRADCHECK_H_
#define IMSR_NN_GRADCHECK_H_

#include <functional>
#include <vector>

#include "nn/variable.h"

namespace imsr::nn {

struct GradCheckResult {
  bool ok = false;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
};

// `forward` rebuilds the graph from the current parameter values and
// returns a scalar Var. The check perturbs every element of every
// parameter with step `epsilon` and compares (f(x+e) - f(x-e)) / 2e with
// the analytic gradient, passing when each element agrees within
// `tolerance` absolutely or relatively.
GradCheckResult CheckGradients(const std::function<Var()>& forward,
                               std::vector<Var> parameters,
                               double epsilon = 1e-3,
                               double tolerance = 2e-2);

}  // namespace imsr::nn

#endif  // IMSR_NN_GRADCHECK_H_
