#include "nn/init.h"

#include <cmath>

namespace imsr::nn {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, util::Rng& rng) {
  IMSR_CHECK_GT(fan_in, 0);
  IMSR_CHECK_GT(fan_out, 0);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::RandUniform({fan_in, fan_out}, rng, -bound, bound);
}

Tensor EmbeddingInit(int64_t rows, int64_t dim, util::Rng& rng) {
  IMSR_CHECK_GT(rows, 0);
  IMSR_CHECK_GT(dim, 0);
  const float stddev = 1.0f / std::sqrt(static_cast<float>(dim));
  return Tensor::Randn({rows, dim}, rng, 0.0f, stddev);
}

}  // namespace imsr::nn
