// Weight initialisation schemes.
#ifndef IMSR_NN_INIT_H_
#define IMSR_NN_INIT_H_

#include "nn/tensor.h"
#include "util/rng.h"

namespace imsr::nn {

// Xavier/Glorot uniform: U[-a, a] with a = sqrt(6 / (fan_in + fan_out)).
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, util::Rng& rng);

// Normal with stddev 1/sqrt(dim) — the usual embedding-table init.
Tensor EmbeddingInit(int64_t rows, int64_t dim, util::Rng& rng);

}  // namespace imsr::nn

#endif  // IMSR_NN_INIT_H_
