// Dense row-major float tensor. This is the numeric substrate replacing
// PyTorch in the reproduction: contiguous storage, up to 3 dimensions
// (everything in the paper is a vector, a matrix, or a small batch of
// matrices), and the op set needed by the MSR models.
#ifndef IMSR_NN_TENSOR_H_
#define IMSR_NN_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace imsr::nn {

class Tensor {
 public:
  // Empty 0-element tensor.
  Tensor() = default;

  // Zero-filled tensor of the given shape. Each extent must be positive.
  explicit Tensor(std::vector<int64_t> shape);

  // Tensor of the given shape with explicit contents (size must match).
  Tensor(std::vector<int64_t> shape, std::vector<float> values);

  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Ones(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);
  // I.i.d. N(mean, stddev^2) entries.
  static Tensor Randn(std::vector<int64_t> shape, util::Rng& rng,
                      float mean = 0.0f, float stddev = 1.0f);
  // I.i.d. U[lo, hi) entries.
  static Tensor RandUniform(std::vector<int64_t> shape, util::Rng& rng,
                            float lo, float hi);
  // d x d identity.
  static Tensor Identity(int64_t d);
  // 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  bool defined() const { return !shape_.empty(); }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t size(int64_t axis) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  // Element access (checked in debug builds).
  float& at(int64_t i);
  float at(int64_t i) const;
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i, int64_t j, int64_t k) const;

  // Scalar value of a 1-element tensor.
  float item() const;

  // Same data, new shape (numel must match).
  Tensor Reshape(std::vector<int64_t> new_shape) const;

  // Deep copy (Tensor is value-semantic already; Clone is for emphasis at
  // call sites that would otherwise look like aliasing).
  Tensor Clone() const { return *this; }

  // ---- In-place mutators ----
  void Fill(float value);
  void AddInPlace(const Tensor& other);           // this += other
  void AddScaledInPlace(const Tensor& other, float alpha);  // this += a*other
  void ScaleInPlace(float alpha);                 // this *= alpha

  // ---- Shape helpers ----
  // Row i of a 2-D tensor as a 1-D tensor (copy).
  Tensor Row(int64_t i) const;
  // Sets row i of a 2-D tensor from a 1-D tensor.
  void SetRow(int64_t i, const Tensor& row);
  // Rows [begin, end) of a 2-D tensor (copy).
  Tensor RowSlice(int64_t begin, int64_t end) const;

  std::string ShapeString() const;
  std::string ToString(int max_entries = 32) const;

 private:
  int64_t Offset(int64_t i, int64_t j) const {
    IMSR_DCHECK(dim() == 2);
    IMSR_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
    return i * shape_[1] + j;
  }
  int64_t Offset(int64_t i, int64_t j, int64_t k) const {
    IMSR_DCHECK(dim() == 3);
    IMSR_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                k < shape_[2]);
    return (i * shape_[1] + j) * shape_[2] + k;
  }

  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

// Non-owning read-only view of a row-major (rows x cols) float matrix.
// Used by read paths (serving snapshots) whose storage is packed flat
// rather than held in per-user Tensors; kernels taking a view run the
// same code as their Tensor overloads, so results are bitwise identical.
struct ConstMatrixView {
  const float* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
};

// View of a whole 2-D tensor.
inline ConstMatrixView ViewOf(const Tensor& t) {
  IMSR_DCHECK(t.dim() == 2);
  return {t.data(), t.size(0), t.size(1)};
}

// ---- Free-function tensor ops (no autograd; used by both the autograd
// layer's forward/backward passes and by no-grad model code) ----

// Elementwise; shapes must match exactly.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float alpha);

// Matrix product of 2-D tensors: (m x k) * (k x n) -> (m x n). Blocked
// (4-row panels) and dispatched over the process-wide thread pool for
// large shapes; bitwise-deterministic for any thread count.
Tensor MatMul(const Tensor& a, const Tensor& b);
// Matrix product with the second operand transposed:
// (m x k) * (n x k)^T -> (m x n), i.e. out[i][j] = dot(a.row(i), b.row(j)).
// Both operands stream row-major — use this instead of
// MatMul(a, Transpose(b)); nothing is materialised.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
// MatMulTransB writing into `out` (reallocated only on shape mismatch) so
// per-user ranking loops can reuse one scratch buffer.
void MatMulTransBInto(const Tensor& a, const Tensor& b, Tensor* out);
// Same, with the transposed operand given as a view over packed storage.
// The Tensor overload delegates here, so for equal values the two produce
// bitwise-identical results.
void MatMulTransBInto(const Tensor& a, ConstMatrixView b, Tensor* out);
// Matrix product with the first operand transposed:
// (r x m)^T * (r x n) -> (m x n). Used by autograd's MatMul backward.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
// Sparsity-aware MatMul that skips zero entries of `a`. Only worth it when
// `a` is mostly zeros (e.g. masked couplings); the dense MatMul path does
// not branch.
Tensor MatMulSparse(const Tensor& a, const Tensor& b);
// 2-D transpose.
Tensor Transpose(const Tensor& a);
// Matrix-vector: (m x k) * (k) -> (m).
Tensor MatVec(const Tensor& a, const Tensor& x);
// Batched matrix-vector: applies `a` to every row of xs (batch x k),
// returning (batch x m) with out.row(r) == MatVec(a, xs.row(r)).
Tensor MatVecBatch(const Tensor& a, const Tensor& xs);

// Dot product of equally sized tensors (flattened).
float DotFlat(const Tensor& a, const Tensor& b);
// Euclidean norm of the flattened tensor.
float L2NormFlat(const Tensor& a);

// Row-wise softmax of a 2-D tensor (or softmax of a 1-D tensor).
Tensor Softmax(const Tensor& a);
// In-place row-wise softmax (fused max/exp/normalise, no allocation).
void SoftmaxRowsInPlace(Tensor* a);
// Row-wise logsumexp of a 2-D tensor -> 1-D of length rows (or scalar for
// 1-D input, returned as a 1-element tensor).
Tensor LogSumExpRows(const Tensor& a);

Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);

// Capsule squash applied per row of a 2-D tensor (or to a 1-D vector):
// squash(v) = (|v|^2 / (1 + |v|^2)) * v / |v|.
Tensor SquashRows(const Tensor& a);

// Concatenates 2-D tensors along rows (equal column counts).
Tensor ConcatRows(const std::vector<Tensor>& parts);

// Gathers rows of a 2-D table into a new 2-D tensor.
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices);

// Max |a - b| over all elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace imsr::nn

#endif  // IMSR_NN_TENSOR_H_
