// Dense row-major float tensor. This is the numeric substrate replacing
// PyTorch in the reproduction: contiguous storage, up to 3 dimensions
// (everything in the paper is a vector, a matrix, or a small batch of
// matrices), and the op set needed by the MSR models.
//
// Storage is recycled through util's size-class buffer pool (see
// buffer_pool.h): construction acquires a buffer, destruction releases
// it, so steady-state training reuses the previous step's memory instead
// of hitting the heap. -DIMSR_POOL=OFF restores plain vectors; values are
// bitwise identical either way.
#ifndef IMSR_NN_TENSOR_H_
#define IMSR_NN_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace imsr::nn {

// Inline dimension list (rank <= 3). Replaces std::vector<int64_t> as the
// shape representation so constructing a Tensor costs zero shape
// allocations; converts implicitly from vectors and braced lists at
// existing call sites.
class Shape {
 public:
  static constexpr int64_t kMaxRank = 3;

  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) {
    IMSR_CHECK_LE(static_cast<int64_t>(dims.size()), kMaxRank)
        << "tensors support at most rank " << kMaxRank;
    for (int64_t extent : dims) dims_[rank_++] = extent;
  }
  // Implicit: legacy call sites pass std::vector<int64_t> shapes.
  Shape(const std::vector<int64_t>& dims) {
    IMSR_CHECK_LE(static_cast<int64_t>(dims.size()), kMaxRank)
        << "tensors support at most rank " << kMaxRank;
    for (int64_t extent : dims) dims_[rank_++] = extent;
  }

  bool empty() const { return rank_ == 0; }
  size_t size() const { return static_cast<size_t>(rank_); }
  int64_t operator[](size_t i) const {
    IMSR_DCHECK(i < static_cast<size_t>(rank_));
    return dims_[i];
  }
  const int64_t* begin() const { return dims_; }
  const int64_t* end() const { return dims_ + rank_; }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (int8_t i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  int64_t dims_[kMaxRank] = {0, 0, 0};
  int8_t rank_ = 0;
};

class Tensor {
 public:
  // Empty 0-element tensor.
  Tensor() = default;

  // Zero-filled tensor of the given shape. Each extent must be positive.
  explicit Tensor(Shape shape);

  // Tensor of the given shape with explicit contents (size must match).
  Tensor(Shape shape, std::vector<float> values);

  ~Tensor();
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;

  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  // Tensor whose contents are unspecified (pooled buffers carry stale
  // values). Strictly for kernels that overwrite every element before the
  // tensor escapes; everything else wants the zero-filled constructor.
  static Tensor Uninitialized(Shape shape);
  // I.i.d. N(mean, stddev^2) entries.
  static Tensor Randn(Shape shape, util::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  // I.i.d. U[lo, hi) entries.
  static Tensor RandUniform(Shape shape, util::Rng& rng, float lo, float hi);
  // d x d identity.
  static Tensor Identity(int64_t d);
  // 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  bool defined() const { return !shape_.empty(); }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  const Shape& shape() const { return shape_; }
  int64_t size(int64_t axis) const {
    IMSR_CHECK(axis >= 0 && axis < dim());
    return shape_[static_cast<size_t>(axis)];
  }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  // Element access (checked in debug builds). Defined inline: these sit
  // in the innermost loops of kernels and backward closures, where an
  // out-of-line call per element would dominate the arithmetic.
  float& at(int64_t i) {
    IMSR_DCHECK(dim() == 1 && i >= 0 && i < shape_[0]);
    return data_[static_cast<size_t>(i)];
  }
  float at(int64_t i) const {
    IMSR_DCHECK(dim() == 1 && i >= 0 && i < shape_[0]);
    return data_[static_cast<size_t>(i)];
  }
  float& at(int64_t i, int64_t j) {
    return data_[static_cast<size_t>(Offset(i, j))];
  }
  float at(int64_t i, int64_t j) const {
    return data_[static_cast<size_t>(Offset(i, j))];
  }
  float& at(int64_t i, int64_t j, int64_t k) {
    return data_[static_cast<size_t>(Offset(i, j, k))];
  }
  float at(int64_t i, int64_t j, int64_t k) const {
    return data_[static_cast<size_t>(Offset(i, j, k))];
  }

  // Scalar value of a 1-element tensor.
  float item() const {
    IMSR_CHECK_EQ(numel(), 1);
    return data_[0];
  }

  // Same data, new shape (numel must match).
  Tensor Reshape(Shape new_shape) const;

  // Reshapes in place to `shape`, reusing the current buffer when numel
  // matches and acquiring a fresh one otherwise. Contents are unspecified
  // afterwards — this is the realloc step of the *Into kernels, which
  // overwrite every element.
  void ResizeUninitialized(Shape shape);

  // Deep copy (Tensor is value-semantic already; Clone is for emphasis at
  // call sites that would otherwise look like aliasing).
  Tensor Clone() const { return *this; }

  // ---- In-place mutators ----
  void Fill(float value);
  void AddInPlace(const Tensor& other);           // this += other
  void AddScaledInPlace(const Tensor& other, float alpha);  // this += a*other
  void ScaleInPlace(float alpha);                 // this *= alpha

  // ---- Shape helpers ----
  // Row i of a 2-D tensor as a 1-D tensor (copy).
  Tensor Row(int64_t i) const;
  // Sets row i of a 2-D tensor from a 1-D tensor.
  void SetRow(int64_t i, const Tensor& row);
  // Rows [begin, end) of a 2-D tensor (copy).
  Tensor RowSlice(int64_t begin, int64_t end) const;

  std::string ShapeString() const;
  std::string ToString(int max_entries = 32) const;

 private:
  int64_t Offset(int64_t i, int64_t j) const {
    IMSR_DCHECK(dim() == 2);
    IMSR_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1]);
    return i * shape_[1] + j;
  }
  int64_t Offset(int64_t i, int64_t j, int64_t k) const {
    IMSR_DCHECK(dim() == 3);
    IMSR_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                k < shape_[2]);
    return (i * shape_[1] + j) * shape_[2] + k;
  }

  Shape shape_;
  std::vector<float> data_;
};

// Non-owning read-only view of a row-major (rows x cols) float matrix.
// Used by read paths (serving snapshots) whose storage is packed flat
// rather than held in per-user Tensors; kernels taking a view run the
// same code as their Tensor overloads, so results are bitwise identical.
struct ConstMatrixView {
  const float* data = nullptr;
  int64_t rows = 0;
  int64_t cols = 0;
};

// View of a whole 2-D tensor.
inline ConstMatrixView ViewOf(const Tensor& t) {
  IMSR_DCHECK(t.dim() == 2);
  return {t.data(), t.size(0), t.size(1)};
}

// ---- Free-function tensor ops (no autograd; used by both the autograd
// layer's forward/backward passes and by no-grad model code) ----

// Elementwise; shapes must match exactly.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float alpha);

// Matrix product of 2-D tensors: (m x k) * (k x n) -> (m x n). Blocked
// (4-row panels) and dispatched over the process-wide thread pool for
// large shapes; bitwise-deterministic for any thread count.
Tensor MatMul(const Tensor& a, const Tensor& b);
// MatMul writing into `out` (buffer reused across calls); `out` must not
// alias an operand.
void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out);
// Matrix product with the second operand transposed:
// (m x k) * (n x k)^T -> (m x n), i.e. out[i][j] = dot(a.row(i), b.row(j)).
// Both operands stream row-major — use this instead of
// MatMul(a, Transpose(b)); nothing is materialised.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
// MatMulTransB writing into `out` (reallocated only on shape mismatch) so
// per-user ranking loops can reuse one scratch buffer.
void MatMulTransBInto(const Tensor& a, const Tensor& b, Tensor* out);
// Same, with the transposed operand given as a view over packed storage.
// The Tensor overload delegates here, so for equal values the two produce
// bitwise-identical results.
void MatMulTransBInto(const Tensor& a, ConstMatrixView b, Tensor* out);
// Matrix product with the first operand transposed:
// (r x m)^T * (r x n) -> (m x n). Used by autograd's MatMul backward.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
// MatMulTransA writing into `out`; `out` must not alias an operand.
void MatMulTransAInto(const Tensor& a, const Tensor& b, Tensor* out);
// Sparsity-aware MatMul that skips zero entries of `a`. Only worth it when
// `a` is mostly zeros (e.g. masked couplings); the dense MatMul path does
// not branch.
Tensor MatMulSparse(const Tensor& a, const Tensor& b);
// 2-D transpose (blocked, cache-friendly tiles).
Tensor Transpose(const Tensor& a);
// Transpose writing into `out`; `out` must not alias `a`.
void TransposeInto(const Tensor& a, Tensor* out);
// Matrix-vector: (m x k) * (k) -> (m).
Tensor MatVec(const Tensor& a, const Tensor& x);
// a^T x for a (m x k) and x (m) -> (k). Same accumulation order as
// MatVec(Transpose(a), x) — bitwise identical — without materialising the
// transpose.
Tensor MatVecTransA(const Tensor& a, const Tensor& x);
// Batched matrix-vector: applies `a` to every row of xs (batch x k),
// returning (batch x m) with out.row(r) == MatVec(a, xs.row(r)).
Tensor MatVecBatch(const Tensor& a, const Tensor& xs);

// Dot product of equally sized tensors (flattened).
float DotFlat(const Tensor& a, const Tensor& b);
// Dot product over raw spans of length n — the same scalar/SIMD dispatch
// as DotFlat (reduction class: the vectorized path reorders additions).
// Exposed for fused ops that score packed row blocks without making
// Tensor views.
float DotSpan(const float* a, const float* b, int64_t n);
// Euclidean norm of the flattened tensor.
float L2NormFlat(const Tensor& a);

// Row-wise softmax of a 2-D tensor (or softmax of a 1-D tensor).
Tensor Softmax(const Tensor& a);
// Softmax writing into `out`; `out` must not alias `a` (use
// SoftmaxRowsInPlace for that).
void SoftmaxInto(const Tensor& a, Tensor* out);
// In-place row-wise softmax (fused max/exp/normalise, no allocation).
void SoftmaxRowsInPlace(Tensor* a);
// Row-wise logsumexp of a 2-D tensor -> 1-D of length rows (or scalar for
// 1-D input, returned as a 1-element tensor).
Tensor LogSumExpRows(const Tensor& a);

Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);

// Capsule squash applied per row of a 2-D tensor (or to a 1-D vector):
// squash(v) = (|v|^2 / (1 + |v|^2)) * v / |v|.
Tensor SquashRows(const Tensor& a);
// SquashRows writing into `out`; `out` must not alias `a`.
void SquashRowsInto(const Tensor& a, Tensor* out);

// Concatenates 2-D tensors along rows (equal column counts).
Tensor ConcatRows(const std::vector<Tensor>& parts);

// Gathers rows of a 2-D table into a new 2-D tensor.
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices);
// GatherRows over a raw index span, writing into `out` (buffer reused).
void GatherRowsInto(const Tensor& table, const int64_t* indices,
                    int64_t count, Tensor* out);

// Rows per panel of the panelized k-major layout below. Also the item
// block size of the serve scoring sweep (serve/recommend.cc), which
// keys its blocks to panel boundaries so every block reads exactly one
// contiguous panel.
inline constexpr int64_t kKMajorPanelRows = 1024;

// Repacks a row-major (m x k) matrix into panelized k-major layout:
// rows are grouped into panels of kKMajorPanelRows; within panel p
// (rows_p = min(panel, m - p*panel) rows), element (i, kk) lives at
// panel_base[kk * rows_p + (i - panel_first_row)]. Full panels make
// panel p's base offset simply p * kKMajorPanelRows * k; the last panel
// is stored compact, so `out` holds exactly m*k floats (shape {m, k},
// layout panelized). Column-major within a panel puts SIMD lanes across
// items; panel-major overall keeps a scoring sweep's reads inside one
// contiguous 4*k*panel-byte window instead of k column streams strided
// by the full corpus — sequential traffic the prefetcher can follow.
void PanelizeKMajorInto(const Tensor& a, Tensor* out);

// A * B^T with A supplied in panelized k-major layout: `a_panels` views
// PanelizeKMajorInto's output (rows = m items, cols = k); computes
// out[i][j] = dot(A.row(i), b.row(j)) into (m x n). Order-preserving
// class: SIMD lanes run across output rows (independent elements), each
// element's kk accumulation is strictly sequential, so the bits equal
// the scalar dot order (MatMulTransBRows) regardless of the SimdEnabled
// flag, the operand width n, or the row split. That width invariance is
// what the serve read path builds on: the snapshot keeps its embedding
// table in this layout, so scoring many users' concatenated interest
// rows in one fused call is bitwise identical to one call per user — the
// RecommendBatch == RecommendOne contract (DESIGN.md §15).
void MatMulTransBPanelInto(ConstMatrixView a_panels, ConstMatrixView b,
                           Tensor* out);

// Row-range form of MatMulTransBPanelInto: computes output rows
// [i_begin, i_end) into `out`, which holds (i_end - i_begin) x b.rows
// floats — block-relative, so a caller sweeping the corpus in item
// blocks reuses one small tile that stays cache-resident for the
// reduction that follows (the serve scoring loop, DESIGN.md §15). Runs
// the identical kernel body serially; row i's bits match row i of the
// full product exactly, wherever the block boundaries land.
void MatMulTransBPanelRangeInto(ConstMatrixView a_panels, ConstMatrixView b,
                                int64_t i_begin, int64_t i_end, float* out);

// Gathered A * B^T: out[r][j] = dot(a.row(rows[r]), b.row(j)) for the
// `num_rows` row indices in `rows`. Picks the kernel by the FULL shape
// (a.size(0) x b.rows), not the gathered one, so every computed row is
// bitwise identical to the corresponding row of MatMulTransBInto(a, b)
// regardless of how few rows are gathered (the IVF re-rank contract:
// shortlist scores must match the brute-force oracle's bits). `gathered`
// is caller-owned scratch for the row copies (buffer reused).
void MatMulTransBGatherInto(const Tensor& a, ConstMatrixView b,
                            const int64_t* rows, int64_t num_rows,
                            Tensor* gathered, Tensor* out);

// Max |a - b| over all elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

bool SameShape(const Tensor& a, const Tensor& b);

}  // namespace imsr::nn

#endif  // IMSR_NN_TENSOR_H_
