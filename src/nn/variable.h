// Reverse-mode automatic differentiation over Tensor. A Var is a handle to
// a node in a dynamically built computation graph; free functions in
// nn/ops.h build the graph and Var::Backward() runs the reverse sweep.
//
// Constants participate as Vars with requires_grad == false: the backward
// sweep never allocates gradients for them, so wrapping a Tensor in a Var
// is cheap and uniform.
#ifndef IMSR_NN_VARIABLE_H_
#define IMSR_NN_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace imsr::nn {

struct VarNode {
  Tensor value;
  Tensor grad;  // allocated lazily on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarNode>> parents;
  // Distributes this node's grad into parents' grads. Null for leaves.
  std::function<void(VarNode&)> backward_fn;

  // Accumulates `delta` into grad, allocating a zero tensor on first use.
  void AccumulateGrad(const Tensor& delta);
};

class Var {
 public:
  // Undefined handle.
  Var() = default;

  // Leaf node. Parameters pass requires_grad = true; constants use the
  // default false.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  bool requires_grad() const;

  // Gradient of the last Backward() call. Zero-shaped until the node has
  // received any gradient. has_grad() distinguishes "no flow" from zeros.
  bool has_grad() const;
  const Tensor& grad() const;

  // Clears the accumulated gradient (parameters call this between steps).
  void ZeroGrad();

  // Reverse sweep from this (scalar) node: seeds d(self)/d(self) = 1 and
  // propagates to every reachable node with requires_grad.
  void Backward();

  std::shared_ptr<VarNode> node() const { return node_; }

  // Internal: builds an interior node (used by ops).
  static Var MakeNode(Tensor value, std::vector<Var> parents,
                      std::function<void(VarNode&)> backward_fn);

 private:
  std::shared_ptr<VarNode> node_;
};

}  // namespace imsr::nn

#endif  // IMSR_NN_VARIABLE_H_
