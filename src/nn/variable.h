// Reverse-mode automatic differentiation over Tensor. A Var is a handle to
// a node in a dynamically built computation graph; free functions in
// nn/ops.h build the graph and Var::Backward() runs the reverse sweep.
//
// Constants participate as Vars with requires_grad == false: the backward
// sweep never allocates gradients for them, so wrapping a Tensor in a Var
// is cheap and uniform. Two thread-local modes shape construction (see
// nn/arena.h): an active GraphArenaScope carves nodes, parent lists and
// backward closures out of a per-step bump arena instead of the heap, and
// a NoGradGuard builds value-only nodes with no tape at all.
#ifndef IMSR_NN_VARIABLE_H_
#define IMSR_NN_VARIABLE_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "nn/arena.h"
#include "nn/tensor.h"

namespace imsr::nn {

struct VarNode;

// Type-erased move-only backward closure with graph lifetime: the closure
// object lives in the node's arena (heap when none). Unlike std::function
// this imposes no copyability requirement, so closures may own move-only
// state (e.g. an ArenaArray of gather indices), and never allocates
// outside the graph's allocator.
class BackwardFn {
 public:
  BackwardFn() = default;
  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;
  BackwardFn(BackwardFn&& other) noexcept { MoveFrom(other); }
  BackwardFn& operator=(BackwardFn&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }
  ~BackwardFn() { Destroy(); }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()(VarNode& node) const { invoke_(state_, node); }

  template <typename F>
  static BackwardFn Create(F&& fn, GraphArena* arena) {
    using Fn = std::decay_t<F>;
    BackwardFn out;
    void* memory = arena != nullptr
                       ? arena->Allocate(sizeof(Fn), alignof(Fn))
                       : ::operator new(sizeof(Fn));
    out.state_ = new (memory) Fn(std::forward<F>(fn));
    out.arena_ = arena;
    out.bytes_ = sizeof(Fn);
    out.invoke_ = [](void* state, VarNode& node) {
      (*static_cast<Fn*>(state))(node);
    };
    out.destroy_ = [](void* state) { static_cast<Fn*>(state)->~Fn(); };
    return out;
  }

 private:
  void Destroy() {
    if (state_ == nullptr) return;
    destroy_(state_);
    if (arena_ != nullptr) {
      arena_->Deallocate(state_, bytes_);
    } else {
      ::operator delete(state_);
    }
    state_ = nullptr;
    invoke_ = nullptr;
  }

  void MoveFrom(BackwardFn& other) {
    state_ = other.state_;
    arena_ = other.arena_;
    bytes_ = other.bytes_;
    invoke_ = other.invoke_;
    destroy_ = other.destroy_;
    other.state_ = nullptr;
    other.invoke_ = nullptr;
  }

  void* state_ = nullptr;
  GraphArena* arena_ = nullptr;
  size_t bytes_ = 0;
  void (*invoke_)(void*, VarNode&) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

// Fixed-capacity owning array of parent edges, storage from the node's
// arena (heap when none). Replaces std::vector<shared_ptr<VarNode>> so
// building an interior node performs no heap allocation under an arena.
class ParentList {
 public:
  ParentList() = default;
  ParentList(const ParentList&) = delete;
  ParentList& operator=(const ParentList&) = delete;
  ~ParentList();

  // Allocates storage for exactly `count` edges; call once, then Append
  // up to `count` times.
  void Reserve(size_t count, GraphArena* arena);
  void Append(std::shared_ptr<VarNode> parent);

  size_t size() const { return size_; }
  VarNode* operator[](size_t i) const {
    IMSR_DCHECK(i < size_);
    return data_[i].get();
  }

 private:
  std::shared_ptr<VarNode>* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
  GraphArena* arena_ = nullptr;
};

struct VarNode {
  Tensor value;
  Tensor grad;  // allocated lazily on first accumulation
  bool requires_grad = false;
  // Traversal scratch for Var::Backward(); always false between sweeps.
  bool visited = false;
  // Arena this node (and its parent list / backward closure) was carved
  // from; null for heap-backed nodes (parameters, eval-time graphs).
  GraphArena* arena = nullptr;
  ParentList parents;
  // Distributes this node's grad into parents' grads. Null for leaves.
  BackwardFn backward_fn;

  // Accumulates `delta` into grad; the first accumulation adopts/copies
  // `delta` (every later one is an elementwise add).
  void AccumulateGrad(const Tensor& delta);
  void AccumulateGrad(Tensor&& delta);
  // Adds `delta` — one or more full rows of this (R x C) node — into the
  // grad starting at row `row_begin`, zero-filling the grad lazily.
  // Row-slice backwards use this to add straight into the parent's grad
  // instead of materializing a full-size scratch gradient per slice.
  void AccumulateGradRows(const Tensor& delta, int64_t row_begin);
};

class Var {
 public:
  // Undefined handle.
  Var() = default;

  // Leaf node. Parameters pass requires_grad = true; constants use the
  // default false.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  // Accessors are inline — backward closures read values in elementwise
  // loops, where an out-of-line call per read would dominate.
  const Tensor& value() const {
    IMSR_CHECK(defined());
    return node_->value;
  }
  Tensor& mutable_value() {
    IMSR_CHECK(defined());
    return node_->value;
  }
  bool requires_grad() const {
    IMSR_CHECK(defined());
    return node_->requires_grad;
  }

  // Gradient of the last Backward() call. Zero-shaped until the node has
  // received any gradient. has_grad() distinguishes "no flow" from zeros.
  bool has_grad() const {
    IMSR_CHECK(defined());
    return node_->grad.defined();
  }
  const Tensor& grad() const {
    IMSR_CHECK(defined());
    IMSR_CHECK(node_->grad.defined()) << "no gradient accumulated";
    return node_->grad;
  }

  // Clears the accumulated gradient (parameters call this between steps).
  void ZeroGrad();

  // Reverse sweep from this (scalar) node: seeds d(self)/d(self) = 1 and
  // propagates to every reachable node with requires_grad.
  void Backward();

  std::shared_ptr<VarNode> node() const { return node_; }

  // Internal: builds an interior node (used by ops). The backward closure
  // is only materialised when some parent requires grad and grad mode is
  // on; otherwise the node is a plain constant (no parents, no tape).
  template <typename F>
  static Var MakeNode(Tensor value, std::initializer_list<Var> parents,
                      F&& backward_fn) {
    Var out = MakeNodeShell(std::move(value), parents.begin(),
                            parents.size());
    AttachBackward(out, std::forward<F>(backward_fn));
    return out;
  }
  template <typename F>
  static Var MakeNode(Tensor value, const std::vector<Var>& parents,
                      F&& backward_fn) {
    Var out = MakeNodeShell(std::move(value), parents.data(),
                            parents.size());
    AttachBackward(out, std::forward<F>(backward_fn));
    return out;
  }

 private:
  static Var MakeNodeShell(Tensor value, const Var* parents, size_t count);

  template <typename F>
  static void AttachBackward(Var& out, F&& backward_fn) {
    if (out.node_->requires_grad) {
      out.node_->backward_fn = BackwardFn::Create(
          std::forward<F>(backward_fn), out.node_->arena);
    }
  }

  std::shared_ptr<VarNode> node_;
};

}  // namespace imsr::nn

#endif  // IMSR_NN_VARIABLE_H_
