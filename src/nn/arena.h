// Per-step bump arena for the autograd tape, plus the thread-local modes
// that govern graph construction (active arena, no-grad). One optimizer
// step builds a few hundred VarNodes, backward closures and parent lists
// that all die together after optimizer_.Step(); carving them out of a
// reusable arena replaces that churn with pointer bumps (DESIGN.md §10).
//
// Lifetime contract: every node allocated while a GraphArenaScope is
// active must be released before (or by) the Reset() that recycles the
// step's memory. Reset() enforces this safely: it only rewinds once the
// live-allocation count reaches zero, deferring otherwise — a graph that
// escapes the step keeps valid memory, it just delays recycling.
#ifndef IMSR_NN_ARENA_H_
#define IMSR_NN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace imsr::nn {

// Bump allocator with block reuse. Not thread-safe: a GraphArena belongs
// to the single thread building and tearing down its graphs (the
// trainer's). Blocks are retained across Reset(), so a warmed arena
// serves a whole training run without touching the heap.
class GraphArena {
 public:
  explicit GraphArena(size_t block_bytes = size_t{1} << 18);
  ~GraphArena() = default;
  GraphArena(const GraphArena&) = delete;
  GraphArena& operator=(const GraphArena&) = delete;

  void* Allocate(size_t bytes, size_t alignment);
  // Releases one allocation. Memory is not reusable until Reset(); this
  // only maintains the live count (and completes a deferred reset).
  void Deallocate(void* ptr, size_t bytes);

  // Rewinds to empty. If allocations are still live, the rewind is
  // deferred until the last one is deallocated.
  void Reset();

  size_t live_allocations() const { return live_; }
  // Peak concurrently-used bytes since construction (obs gauge).
  size_t high_water_bytes() const { return high_water_; }
  // Total capacity of the arena's blocks.
  size_t capacity_bytes() const;

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  void DoReset();

  std::vector<Block> blocks_;
  size_t block_bytes_;
  size_t current_block_ = 0;
  size_t offset_ = 0;       // bump offset within blocks_[current_block_]
  size_t used_bytes_ = 0;   // currently live bytes (approximate, aligned)
  size_t high_water_ = 0;
  size_t live_ = 0;
  bool reset_pending_ = false;
};

// Arena new graph nodes are carved from on this thread, or null for plain
// heap allocation.
GraphArena* CurrentGraphArena();

// RAII scope making `arena` the thread's current graph arena. Nests;
// restores the previous arena (usually null) on destruction.
class GraphArenaScope {
 public:
  explicit GraphArenaScope(GraphArena* arena);
  ~GraphArenaScope();
  GraphArenaScope(const GraphArenaScope&) = delete;
  GraphArenaScope& operator=(const GraphArenaScope&) = delete;

 private:
  GraphArena* previous_;
};

// True unless a NoGradGuard is active on this thread.
bool GradEnabled();

// RAII inference mode: while alive, ops build no tape — no parents, no
// backward closures, no grad flow — so eval-only forwards (e.g.
// ImsrTrainer::ValidationLoss) pay for values only. Nests.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

// Minimal STL allocator over a GraphArena (null arena -> operator new).
// Used with std::allocate_shared so a VarNode and its control block land
// in the arena as one allocation.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(GraphArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* ptr, size_t n) {
    if (arena_ != nullptr) {
      arena_->Deallocate(ptr, n * sizeof(T));
    } else {
      ::operator delete(ptr);
    }
  }

  GraphArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  GraphArena* arena_;
};

// Owning array of trivially-destructible elements with graph lifetime:
// arena-backed while a graph arena is active, heap otherwise. Backward
// closures capture one of these (e.g. GatherRows' index list) instead of
// an owning std::vector, so per-node state follows the tape's allocator.
template <typename T>
class ArenaArray {
  static_assert(std::is_trivially_destructible_v<T>,
                "ArenaArray elements are never destroyed individually");

 public:
  ArenaArray() = default;
  ArenaArray(const T* src, size_t count, GraphArena* arena)
      : arena_(arena), size_(count) {
    if (count == 0) return;
    const size_t bytes = count * sizeof(T);
    data_ = static_cast<T*>(arena != nullptr
                                ? arena->Allocate(bytes, alignof(T))
                                : ::operator new(bytes));
    std::memcpy(data_, src, bytes);
  }
  ArenaArray(ArenaArray&& other) noexcept
      : arena_(other.arena_), data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  ArenaArray& operator=(ArenaArray&& other) noexcept {
    if (this != &other) {
      Free();
      arena_ = other.arena_;
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ArenaArray(const ArenaArray&) = delete;
  ArenaArray& operator=(const ArenaArray&) = delete;
  ~ArenaArray() { Free(); }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  const T& operator[](size_t i) const {
    IMSR_DCHECK(i < size_);
    return data_[i];
  }

 private:
  void Free() {
    if (data_ == nullptr) return;
    if (arena_ != nullptr) {
      arena_->Deallocate(data_, size_ * sizeof(T));
    } else {
      ::operator delete(data_);
    }
    data_ = nullptr;
  }

  GraphArena* arena_ = nullptr;
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace imsr::nn

#endif  // IMSR_NN_ARENA_H_
