#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>

#include "util/buffer_pool.h"
#include "util/thread_pool.h"

namespace imsr::nn {
namespace {

int64_t ShapeNumel(const Shape& shape) {
  IMSR_CHECK(!shape.empty());
  int64_t numel = 1;
  for (int64_t extent : shape) {
    IMSR_CHECK_GT(extent, 0) << "tensor extents must be positive";
    numel *= extent;
  }
  return numel;
}

}  // namespace

// ---- Storage lifecycle: every buffer comes from / returns to the
// size-class pool (a plain heap vector under -DIMSR_POOL=OFF). ----

Tensor::Tensor(Shape shape)
    : shape_(shape),
      data_(util::AcquireZeroedBuffer(
          static_cast<size_t>(ShapeNumel(shape)))) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(shape), data_(std::move(values)) {
  IMSR_CHECK_EQ(ShapeNumel(shape_), static_cast<int64_t>(data_.size()));
}

Tensor::~Tensor() {
  if (data_.capacity() != 0) util::ReleaseBuffer(std::move(data_));
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  if (other.data_.empty()) return;
  data_ = util::AcquireBuffer(other.data_.size());
  std::memcpy(data_.data(), other.data_.data(),
              other.data_.size() * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  if (data_.size() != other.data_.size()) {
    if (data_.capacity() != 0) util::ReleaseBuffer(std::move(data_));
    data_ = other.data_.empty()
                ? std::vector<float>()
                : util::AcquireBuffer(other.data_.size());
  }
  if (!other.data_.empty()) {
    std::memcpy(data_.data(), other.data_.data(),
                other.data_.size() * sizeof(float));
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_), data_(std::move(other.data_)) {
  other.shape_ = Shape();
  other.data_.clear();
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  if (data_.capacity() != 0) util::ReleaseBuffer(std::move(data_));
  shape_ = other.shape_;
  data_ = std::move(other.data_);
  other.shape_ = Shape();
  other.data_.clear();
  return *this;
}

void Tensor::ResizeUninitialized(Shape shape) {
  const int64_t n = ShapeNumel(shape);
  if (n != numel()) {
    if (data_.capacity() != 0) util::ReleaseBuffer(std::move(data_));
    data_ = util::AcquireBuffer(static_cast<size_t>(n));
  }
  shape_ = shape;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(shape); }

Tensor Tensor::Ones(Shape shape) { return Full(shape, 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Uninitialized(shape);
  t.Fill(value);
  return t;
}

Tensor Tensor::Uninitialized(Shape shape) {
  Tensor t;
  t.shape_ = shape;
  t.data_ = util::AcquireBuffer(static_cast<size_t>(ShapeNumel(shape)));
  return t;
}

Tensor Tensor::Randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t = Uninitialized(shape);
  for (float& v : t.data_) {
    v = static_cast<float>(rng.Gaussian(mean, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t = Uninitialized(shape);
  for (float& v : t.data_) v = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

Tensor Tensor::Identity(int64_t d) {
  Tensor t({d, d});
  for (int64_t i = 0; i < d; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  IMSR_CHECK(!values.empty());
  return Tensor({static_cast<int64_t>(values.size())}, values);
}

Tensor Tensor::Reshape(Shape new_shape) const {
  IMSR_CHECK_EQ(ShapeNumel(new_shape), numel());
  Tensor out = *this;
  out.shape_ = new_shape;
  return out;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  IMSR_CHECK(SameShape(*this, other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::AddScaledInPlace(const Tensor& other, float alpha) {
  IMSR_CHECK(SameShape(*this, other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

void Tensor::ScaleInPlace(float alpha) {
  for (float& v : data_) v *= alpha;
}

Tensor Tensor::Row(int64_t i) const {
  IMSR_CHECK_EQ(dim(), 2);
  IMSR_CHECK(i >= 0 && i < shape_[0]);
  const int64_t cols = shape_[1];
  Tensor row = Uninitialized({cols});
  std::copy_n(data_.begin() + static_cast<size_t>(i * cols),
              static_cast<size_t>(cols), row.data_.begin());
  return row;
}

void Tensor::SetRow(int64_t i, const Tensor& row) {
  IMSR_CHECK_EQ(dim(), 2);
  IMSR_CHECK_EQ(row.dim(), 1);
  IMSR_CHECK_EQ(row.numel(), shape_[1]);
  IMSR_CHECK(i >= 0 && i < shape_[0]);
  std::copy_n(row.data_.begin(), static_cast<size_t>(shape_[1]),
              data_.begin() + static_cast<size_t>(i * shape_[1]));
}

Tensor Tensor::RowSlice(int64_t begin, int64_t end) const {
  IMSR_CHECK_EQ(dim(), 2);
  IMSR_CHECK(begin >= 0 && begin < end && end <= shape_[0])
      << "RowSlice [" << begin << ", " << end << ") of " << shape_[0];
  const int64_t cols = shape_[1];
  Tensor out = Uninitialized({end - begin, cols});
  std::copy(data_.begin() + static_cast<size_t>(begin * cols),
            data_.begin() + static_cast<size_t>(end * cols),
            out.data_.begin());
  return out;
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << "]";
  return out.str();
}

std::string Tensor::ToString(int max_entries) const {
  std::ostringstream out;
  out << "Tensor" << ShapeString() << " {";
  const int64_t shown = std::min<int64_t>(numel(), max_entries);
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    out << data_[static_cast<size_t>(i)];
  }
  if (shown < numel()) out << ", ...";
  out << "}";
  return out.str();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.AddInPlace(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.AddScaledInPlace(b, -1.0f);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  IMSR_CHECK(SameShape(a, b));
  Tensor out = a;
  float* o = out.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < out.numel(); ++i) o[i] *= pb[i];
  return out;
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor out = a;
  out.ScaleInPlace(alpha);
  return out;
}

namespace {

// Work (multiply-adds) below which a kernel is not worth routing through
// the thread pool: dispatch costs a wakeup (~µs); the crossover sits
// around a few hundred k flops.
constexpr int64_t kParallelWorkThreshold = 1 << 18;

// Rows-per-chunk for row-parallel kernels: every output row is computed
// independently and in a fixed accumulation order, so chunk boundaries
// (and hence thread count) cannot change the result bitwise.
int64_t RowGrain(int64_t rows, int64_t work_per_row) {
  const int64_t min_rows =
      std::max<int64_t>(1, kParallelWorkThreshold / (4 * work_per_row + 1));
  const int64_t per_thread = std::max<int64_t>(
      1, rows / (4 * util::GlobalPool().thread_count()));
  return std::max(min_rows, per_thread);
}

// Dense saxpy core over output rows [i_begin, i_end): ikj order streaming
// b and out rows contiguously, with 4-row panels so each loaded b row is
// reused four times from registers. Per-(i, j) accumulation order is the
// plain sequential kk order in both the panel and the remainder path.
//
// The j loops here are pure elementwise saxpy — GCC's -O2 cost model
// refuses to vectorize them, so this kernel alone is compiled at -O3
// (strict IEEE still; no -ffast-math, results stay deterministic). The
// dot-product kernels below are left at -O2 on purpose: their register
// tiles are already the fast shape and -O3's peeling slows them down.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC push_options
#pragma GCC optimize("O3")
#endif
void MatMulRows(const float* __restrict__ pa, const float* __restrict__ pb,
                float* __restrict__ po, int64_t i_begin, int64_t i_end,
                int64_t k, int64_t n) {
  int64_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    const float* __restrict__ a0 = pa + (i + 0) * k;
    const float* __restrict__ a1 = pa + (i + 1) * k;
    const float* __restrict__ a2 = pa + (i + 2) * k;
    const float* __restrict__ a3 = pa + (i + 3) * k;
    float* __restrict__ o0 = po + (i + 0) * n;
    float* __restrict__ o1 = po + (i + 1) * n;
    float* __restrict__ o2 = po + (i + 2) * n;
    float* __restrict__ o3 = po + (i + 3) * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a0k = a0[kk];
      const float a1k = a1[kk];
      const float a2k = a2[kk];
      const float a3k = a3[kk];
      const float* __restrict__ brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) {
        o0[j] += a0k * brow[j];
        o1[j] += a1k * brow[j];
        o2[j] += a2k * brow[j];
        o3[j] += a3k * brow[j];
      }
    }
  }
  for (; i < i_end; ++i) {
    const float* __restrict__ arow = pa + i * k;
    float* __restrict__ orow = po + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* __restrict__ brow = pb + kk * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

// Rank-1 update core for A^T * B: out += a.row(t)^T * b.row(t), t
// ascending, so every out[i][j] accumulates its r contributions in the
// same order as MatMul(Transpose(a), b) — bitwise interchangeable with
// it. All three matrices stream row-major; output rows are not
// independent across t, so the kernel is single-threaded (its matrices
// are routing-loop sized). Same saxpy inner loop as MatMulRows, same
// -O3-for-vectorization treatment.
void MatMulTransARank1(const float* __restrict__ pa,
                       const float* __restrict__ pb, float* __restrict__ po,
                       int64_t r, int64_t m, int64_t n) {
  for (int64_t t = 0; t < r; ++t) {
    const float* __restrict__ arow = pa + t * m;
    const float* __restrict__ brow = pb + t * n;
    for (int64_t i = 0; i < m; ++i) {
      const float ati = arow[i];
      float* __restrict__ orow = po + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += ati * brow[j];
    }
  }
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC pop_options
#endif

// Dot-product core for A * B^T over output rows [i_begin, i_end): 2x4
// register tiles (8 independent accumulator chains) with every lane using
// the same sequential kk order, so tile/remainder placement cannot change
// a result bitwise.
void MatMulTransBRows(const float* __restrict__ pa,
                      const float* __restrict__ pb, float* __restrict__ po,
                      int64_t i_begin, int64_t i_end, int64_t k, int64_t n) {
  int64_t i = i_begin;
  for (; i + 2 <= i_end; i += 2) {
    const float* __restrict__ a0 = pa + (i + 0) * k;
    const float* __restrict__ a1 = pa + (i + 1) * k;
    float* __restrict__ o0 = po + (i + 0) * n;
    float* __restrict__ o1 = po + (i + 1) * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict__ b0 = pb + (j + 0) * k;
      const float* __restrict__ b1 = pb + (j + 1) * k;
      const float* __restrict__ b2 = pb + (j + 2) * k;
      const float* __restrict__ b3 = pb + (j + 3) * k;
      float acc00 = 0.0f, acc01 = 0.0f, acc02 = 0.0f, acc03 = 0.0f;
      float acc10 = 0.0f, acc11 = 0.0f, acc12 = 0.0f, acc13 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float a0k = a0[kk];
        const float a1k = a1[kk];
        acc00 += a0k * b0[kk];
        acc01 += a0k * b1[kk];
        acc02 += a0k * b2[kk];
        acc03 += a0k * b3[kk];
        acc10 += a1k * b0[kk];
        acc11 += a1k * b1[kk];
        acc12 += a1k * b2[kk];
        acc13 += a1k * b3[kk];
      }
      o0[j + 0] = acc00;
      o0[j + 1] = acc01;
      o0[j + 2] = acc02;
      o0[j + 3] = acc03;
      o1[j + 0] = acc10;
      o1[j + 1] = acc11;
      o1[j + 2] = acc12;
      o1[j + 3] = acc13;
    }
    for (; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      float acc0 = 0.0f;
      float acc1 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc0 += a0[kk] * brow[kk];
        acc1 += a1[kk] * brow[kk];
      }
      o0[j] = acc0;
      o1[j] = acc1;
    }
  }
  for (; i < i_end; ++i) {
    const float* __restrict__ arow = pa + i * k;
    float* __restrict__ orow = po + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulInto(a, b, &out);
  return out;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(b.dim(), 2);
  IMSR_CHECK_EQ(a.size(1), b.size(0));
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  const int64_t n = b.size(1);
  out->ResizeUninitialized({m, n});
  out->Fill(0.0f);  // the saxpy kernel accumulates into the output
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  if (m * k * n >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(
        m, RowGrain(m, k * n), [&](int64_t begin, int64_t end) {
          MatMulRows(pa, pb, po, begin, end, k, n);
        });
  } else {
    MatMulRows(pa, pb, po, 0, m, k, n);
  }
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulTransBInto(a, b, &out);
  return out;
}

void MatMulTransBInto(const Tensor& a, const Tensor& b, Tensor* out) {
  IMSR_CHECK_EQ(b.dim(), 2);
  MatMulTransBInto(a, ViewOf(b), out);
}

void MatMulTransBInto(const Tensor& a, ConstMatrixView b, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(b.data != nullptr);
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(a.size(1), b.cols);
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  const int64_t n = b.rows;
  out->ResizeUninitialized({m, n});
  const float* pa = a.data();
  const float* pb = b.data;
  float* po = out->data();
  if (m * k * n >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(
        m, RowGrain(m, k * n), [&](int64_t begin, int64_t end) {
          MatMulTransBRows(pa, pb, po, begin, end, k, n);
        });
  } else {
    MatMulTransBRows(pa, pb, po, 0, m, k, n);
  }
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulTransAInto(a, b, &out);
  return out;
}

void MatMulTransAInto(const Tensor& a, const Tensor& b, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(b.dim(), 2);
  IMSR_CHECK_EQ(a.size(0), b.size(0));
  const int64_t r = a.size(0);
  const int64_t m = a.size(1);
  const int64_t n = b.size(1);
  out->ResizeUninitialized({m, n});
  out->Fill(0.0f);  // rank-1 updates accumulate into the output
  MatMulTransARank1(a.data(), b.data(), out->data(), r, m, n);
}

Tensor MatMulSparse(const Tensor& a, const Tensor& b) {
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(b.dim(), 2);
  IMSR_CHECK_EQ(a.size(1), b.size(0));
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  const int64_t n = b.size(1);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out;
  TransposeInto(a, &out);
  return out;
}

void TransposeInto(const Tensor& a, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(out != &a) << "TransposeInto output must not alias the input";
  IMSR_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0);
  const int64_t n = a.size(1);
  out->ResizeUninitialized({n, m});
  const float* __restrict__ pa = a.data();
  float* __restrict__ po = out->data();
  // 32x32 tiles: both the row-major reads and the strided writes stay
  // within a few cache lines per tile. A pure permutation — trivially
  // bitwise identical to the naive loop.
  constexpr int64_t kTile = 32;
  for (int64_t i0 = 0; i0 < m; i0 += kTile) {
    const int64_t i_end = std::min(m, i0 + kTile);
    for (int64_t j0 = 0; j0 < n; j0 += kTile) {
      const int64_t j_end = std::min(n, j0 + kTile);
      for (int64_t i = i0; i < i_end; ++i) {
        const float* __restrict__ arow = pa + i * n;
        for (int64_t j = j0; j < j_end; ++j) {
          po[j * m + i] = arow[j];
        }
      }
    }
  }
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(x.dim(), 1);
  IMSR_CHECK_EQ(a.size(1), x.numel());
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  Tensor out = Tensor::Uninitialized({m});
  const float* pa = a.data();
  const float* px = x.data();
  for (int64_t i = 0; i < m; ++i) {
    float acc = 0.0f;
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < k; ++j) acc += arow[j] * px[j];
    out.at(i) = acc;
  }
  return out;
}

Tensor MatVecTransA(const Tensor& a, const Tensor& x) {
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(x.dim(), 1);
  IMSR_CHECK_EQ(a.size(0), x.numel());
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  // out[j] = sum_i a[i][j] x[i] over ascending i — the exact order
  // MatVec(Transpose(a), x) uses — streaming a row-major.
  Tensor out({k});
  const float* pa = a.data();
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float xi = px[i];
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < k; ++j) po[j] += xi * arow[j];
  }
  return out;
}

Tensor MatVecBatch(const Tensor& a, const Tensor& xs) {
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(xs.dim(), 2);
  IMSR_CHECK_EQ(a.size(1), xs.size(1));
  // out[r][i] = dot(xs.row(r), a.row(i)) — exactly A * xs^T transposed.
  return MatMulTransB(xs, a);
}

float DotFlat(const Tensor& a, const Tensor& b) {
  IMSR_CHECK_EQ(a.numel(), b.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  float acc = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) acc += pa[i] * pb[i];
  return acc;
}

float L2NormFlat(const Tensor& a) {
  float ss = 0.0f;
  const float* pa = a.data();
  for (int64_t i = 0; i < a.numel(); ++i) ss += pa[i] * pa[i];
  return std::sqrt(ss);
}

namespace {

void SoftmaxSpan(const float* in, float* out, int64_t n) {
  float max_value = in[0];
  for (int64_t i = 1; i < n; ++i) max_value = std::max(max_value, in[i]);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = std::exp(in[i] - max_value);
    total += out[i];
  }
  for (int64_t i = 0; i < n; ++i) out[i] /= total;
}

}  // namespace

Tensor Softmax(const Tensor& a) {
  Tensor out;
  SoftmaxInto(a, &out);
  return out;
}

void SoftmaxInto(const Tensor& a, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(out != &a) << "SoftmaxInto output must not alias the input";
  IMSR_CHECK(a.dim() == 1 || a.dim() == 2);
  out->ResizeUninitialized(a.shape());
  if (a.dim() == 1) {
    SoftmaxSpan(a.data(), out->data(), a.numel());
    return;
  }
  const int64_t rows = a.size(0);
  const int64_t cols = a.size(1);
  const float* pa = a.data();
  float* po = out->data();
  const auto span_rows = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      SoftmaxSpan(pa + i * cols, po + i * cols, cols);
    }
  };
  if (rows * cols >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(rows, RowGrain(rows, cols), span_rows);
  } else {
    span_rows(0, rows);
  }
}

void SoftmaxRowsInPlace(Tensor* a) {
  IMSR_CHECK(a != nullptr);
  IMSR_CHECK(a->dim() == 1 || a->dim() == 2);
  const int64_t rows = a->dim() == 1 ? 1 : a->size(0);
  const int64_t cols = a->dim() == 1 ? a->numel() : a->size(1);
  float* pa = a->data();
  const auto span_rows = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      SoftmaxSpan(pa + i * cols, pa + i * cols, cols);
    }
  };
  if (rows * cols >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(rows, RowGrain(rows, cols), span_rows);
  } else {
    span_rows(0, rows);
  }
}

Tensor LogSumExpRows(const Tensor& a) {
  IMSR_CHECK(a.dim() == 1 || a.dim() == 2);
  const int64_t rows = a.dim() == 1 ? 1 : a.size(0);
  const int64_t cols = a.dim() == 1 ? a.numel() : a.size(1);
  Tensor out = Tensor::Uninitialized({rows});
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = a.data() + i * cols;
    float max_value = row[0];
    for (int64_t j = 1; j < cols; ++j) max_value = std::max(max_value, row[j]);
    float total = 0.0f;
    for (int64_t j = 0; j < cols; ++j) total += std::exp(row[j] - max_value);
    out.at(i) = max_value + std::log(total);
  }
  return out;
}

namespace {

// Shared driver for the elementwise nonlinearities: disjoint index ranges
// through the thread pool above the work threshold, inline below it.
// Chunk boundaries depend only on (numel, grain), so results are bitwise
// identical for any thread count.
template <typename ApplySpan>
void ElementwiseInto(const Tensor& a, Tensor* out, ApplySpan&& apply) {
  IMSR_CHECK(out != nullptr);
  out->ResizeUninitialized(a.shape());
  const float* pa = a.data();
  float* po = out->data();
  const int64_t n = a.numel();
  if (n >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(
        n, RowGrain(n, 1), [&](int64_t begin, int64_t end) {
          apply(pa, po, begin, end);
        });
  } else {
    apply(pa, po, 0, n);
  }
}

}  // namespace

Tensor Sigmoid(const Tensor& a) {
  Tensor out;
  ElementwiseInto(a, &out,
                  [](const float* pa, float* po, int64_t begin, int64_t end) {
                    for (int64_t i = begin; i < end; ++i) {
                      po[i] = 1.0f / (1.0f + std::exp(-pa[i]));
                    }
                  });
  return out;
}

Tensor Tanh(const Tensor& a) {
  Tensor out;
  ElementwiseInto(a, &out,
                  [](const float* pa, float* po, int64_t begin, int64_t end) {
                    for (int64_t i = begin; i < end; ++i) {
                      po[i] = std::tanh(pa[i]);
                    }
                  });
  return out;
}

Tensor Exp(const Tensor& a) {
  Tensor out;
  ElementwiseInto(a, &out,
                  [](const float* pa, float* po, int64_t begin, int64_t end) {
                    for (int64_t i = begin; i < end; ++i) {
                      po[i] = std::exp(pa[i]);
                    }
                  });
  return out;
}

Tensor SquashRows(const Tensor& a) {
  Tensor out;
  SquashRowsInto(a, &out);
  return out;
}

void SquashRowsInto(const Tensor& a, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(out != &a) << "SquashRowsInto output must not alias the input";
  IMSR_CHECK(a.dim() == 1 || a.dim() == 2);
  const int64_t rows = a.dim() == 1 ? 1 : a.size(0);
  const int64_t cols = a.dim() == 1 ? a.numel() : a.size(1);
  out->ResizeUninitialized(a.shape());
  for (int64_t i = 0; i < rows; ++i) {
    const float* in = a.data() + i * cols;
    float* po = out->data() + i * cols;
    float ss = 0.0f;
    for (int64_t j = 0; j < cols; ++j) ss += in[j] * in[j];
    const float norm = std::sqrt(ss);
    // squash(v) = |v|^2/(1+|v|^2) * v/|v|; zero rows map to zero.
    const float coeff = norm > 0.0f ? ss / (1.0f + ss) / norm : 0.0f;
    for (int64_t j = 0; j < cols; ++j) po[j] = coeff * in[j];
  }
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  IMSR_CHECK(!parts.empty());
  int64_t rows = 0;
  const int64_t cols = parts[0].dim() == 2 ? parts[0].size(1)
                                           : parts[0].numel();
  for (const Tensor& part : parts) {
    IMSR_CHECK(part.dim() == 1 || part.dim() == 2);
    const int64_t part_cols =
        part.dim() == 2 ? part.size(1) : part.numel();
    IMSR_CHECK_EQ(part_cols, cols);
    rows += part.dim() == 2 ? part.size(0) : 1;
  }
  Tensor out = Tensor::Uninitialized({rows, cols});
  int64_t row = 0;
  for (const Tensor& part : parts) {
    const int64_t part_rows = part.dim() == 2 ? part.size(0) : 1;
    std::copy_n(part.data(), static_cast<size_t>(part_rows * cols),
                out.data() + row * cols);
    row += part_rows;
  }
  return out;
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices) {
  Tensor out;
  GatherRowsInto(table, indices.data(),
                 static_cast<int64_t>(indices.size()), &out);
  return out;
}

void GatherRowsInto(const Tensor& table, const int64_t* indices,
                    int64_t count, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(out != &table) << "GatherRowsInto must not alias the table";
  IMSR_CHECK_EQ(table.dim(), 2);
  IMSR_CHECK_GT(count, 0);
  const int64_t cols = table.size(1);
  out->ResizeUninitialized({count, cols});
  float* po = out->data();
  const auto gather_rows = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const int64_t row = indices[i];
      IMSR_CHECK(row >= 0 && row < table.size(0))
          << "gather index " << row << " out of range " << table.size(0);
      std::copy_n(table.data() + row * cols, static_cast<size_t>(cols),
                  po + i * cols);
    }
  };
  if (count * cols >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(count, RowGrain(count, cols),
                                   gather_rows);
  } else {
    gather_rows(0, count);
  }
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  IMSR_CHECK(SameShape(a, b));
  float worst = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(pa[i] - pb[i]));
  }
  return worst;
}

}  // namespace imsr::nn
