#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>

#include "nn/simd.h"
#include "util/buffer_pool.h"
#include "util/hot.h"
#include "util/thread_pool.h"

namespace imsr::nn {
namespace {

int64_t ShapeNumel(const Shape& shape) {
  IMSR_CHECK(!shape.empty());
  int64_t numel = 1;
  for (int64_t extent : shape) {
    IMSR_CHECK_GT(extent, 0) << "tensor extents must be positive";
    numel *= extent;
  }
  return numel;
}

}  // namespace

// ---- Storage lifecycle: every buffer comes from / returns to the
// size-class pool (a plain heap vector under -DIMSR_POOL=OFF). ----

Tensor::Tensor(Shape shape)
    : shape_(shape),
      data_(util::AcquireZeroedBuffer(
          static_cast<size_t>(ShapeNumel(shape)))) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(shape), data_(std::move(values)) {
  IMSR_CHECK_EQ(ShapeNumel(shape_), static_cast<int64_t>(data_.size()));
}

Tensor::~Tensor() {
  if (data_.capacity() != 0) util::ReleaseBuffer(std::move(data_));
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  if (other.data_.empty()) return;
  data_ = util::AcquireBuffer(other.data_.size());
  std::memcpy(data_.data(), other.data_.data(),
              other.data_.size() * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  if (data_.size() != other.data_.size()) {
    if (data_.capacity() != 0) util::ReleaseBuffer(std::move(data_));
    data_ = other.data_.empty()
                ? std::vector<float>()
                : util::AcquireBuffer(other.data_.size());
  }
  if (!other.data_.empty()) {
    std::memcpy(data_.data(), other.data_.data(),
                other.data_.size() * sizeof(float));
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_), data_(std::move(other.data_)) {
  other.shape_ = Shape();
  other.data_.clear();
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  if (data_.capacity() != 0) util::ReleaseBuffer(std::move(data_));
  shape_ = other.shape_;
  data_ = std::move(other.data_);
  other.shape_ = Shape();
  other.data_.clear();
  return *this;
}

void Tensor::ResizeUninitialized(Shape shape) {
  const int64_t n = ShapeNumel(shape);
  if (n != numel()) {
    if (data_.capacity() != 0) util::ReleaseBuffer(std::move(data_));
    data_ = util::AcquireBuffer(static_cast<size_t>(n));
  }
  shape_ = shape;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(shape); }

Tensor Tensor::Ones(Shape shape) { return Full(shape, 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Uninitialized(shape);
  t.Fill(value);
  return t;
}

Tensor Tensor::Uninitialized(Shape shape) {
  Tensor t;
  t.shape_ = shape;
  t.data_ = util::AcquireBuffer(static_cast<size_t>(ShapeNumel(shape)));
  return t;
}

Tensor Tensor::Randn(Shape shape, util::Rng& rng, float mean, float stddev) {
  Tensor t = Uninitialized(shape);
  for (float& v : t.data_) {
    v = static_cast<float>(rng.Gaussian(mean, stddev));
  }
  return t;
}

Tensor Tensor::RandUniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t = Uninitialized(shape);
  for (float& v : t.data_) v = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

Tensor Tensor::Identity(int64_t d) {
  Tensor t({d, d});
  for (int64_t i = 0; i < d; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  IMSR_CHECK(!values.empty());
  return Tensor({static_cast<int64_t>(values.size())}, values);
}

Tensor Tensor::Reshape(Shape new_shape) const {
  IMSR_CHECK_EQ(ShapeNumel(new_shape), numel());
  Tensor out = *this;
  out.shape_ = new_shape;
  return out;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

// The in-place elementwise mutators are order-preserving (each output
// element is an independent chain of scalar ops), so the omp simd
// annotation cannot change a bit — no scalar fallback needed.
IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
void Tensor::AddInPlace(const Tensor& other) {
  IMSR_CHECK(SameShape(*this, other));
  float* __restrict__ p = data_.data();
  const float* __restrict__ q = other.data_.data();
  const int64_t n = numel();
  IMSR_SIMD_PRAGMA()
  for (int64_t i = 0; i < n; ++i) p[i] += q[i];
}

IMSR_SIMD_CLONES
void Tensor::AddScaledInPlace(const Tensor& other, float alpha) {
  IMSR_CHECK(SameShape(*this, other));
  float* __restrict__ p = data_.data();
  const float* __restrict__ q = other.data_.data();
  const int64_t n = numel();
  IMSR_SIMD_PRAGMA()
  for (int64_t i = 0; i < n; ++i) p[i] += alpha * q[i];
}

IMSR_SIMD_CLONES
void Tensor::ScaleInPlace(float alpha) {
  float* __restrict__ p = data_.data();
  const int64_t n = numel();
  IMSR_SIMD_PRAGMA()
  for (int64_t i = 0; i < n; ++i) p[i] *= alpha;
}
IMSR_HOT_END

Tensor Tensor::Row(int64_t i) const {
  IMSR_CHECK_EQ(dim(), 2);
  IMSR_CHECK(i >= 0 && i < shape_[0]);
  const int64_t cols = shape_[1];
  Tensor row = Uninitialized({cols});
  std::copy_n(data_.begin() + static_cast<size_t>(i * cols),
              static_cast<size_t>(cols), row.data_.begin());
  return row;
}

void Tensor::SetRow(int64_t i, const Tensor& row) {
  IMSR_CHECK_EQ(dim(), 2);
  IMSR_CHECK_EQ(row.dim(), 1);
  IMSR_CHECK_EQ(row.numel(), shape_[1]);
  IMSR_CHECK(i >= 0 && i < shape_[0]);
  std::copy_n(row.data_.begin(), static_cast<size_t>(shape_[1]),
              data_.begin() + static_cast<size_t>(i * shape_[1]));
}

Tensor Tensor::RowSlice(int64_t begin, int64_t end) const {
  IMSR_CHECK_EQ(dim(), 2);
  IMSR_CHECK(begin >= 0 && begin < end && end <= shape_[0])
      << "RowSlice [" << begin << ", " << end << ") of " << shape_[0];
  const int64_t cols = shape_[1];
  Tensor out = Uninitialized({end - begin, cols});
  std::copy(data_.begin() + static_cast<size_t>(begin * cols),
            data_.begin() + static_cast<size_t>(end * cols),
            out.data_.begin());
  return out;
}

std::string Tensor::ShapeString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << "]";
  return out.str();
}

std::string Tensor::ToString(int max_entries) const {
  std::ostringstream out;
  out << "Tensor" << ShapeString() << " {";
  const int64_t shown = std::min<int64_t>(numel(), max_entries);
  for (int64_t i = 0; i < shown; ++i) {
    if (i > 0) out << ", ";
    out << data_[static_cast<size_t>(i)];
  }
  if (shown < numel()) out << ", ...";
  out << "}";
  return out.str();
}

bool SameShape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.AddInPlace(b);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.AddScaledInPlace(b, -1.0f);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  IMSR_CHECK(SameShape(a, b));
  Tensor out = a;
  float* __restrict__ o = out.data();
  const float* __restrict__ pb = b.data();
  const int64_t n = out.numel();
  IMSR_SIMD_PRAGMA()
  for (int64_t i = 0; i < n; ++i) o[i] *= pb[i];
  return out;
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor out = a;
  out.ScaleInPlace(alpha);
  return out;
}

namespace {

// Work (multiply-adds) below which a kernel is not worth routing through
// the thread pool: dispatch costs a wakeup (~µs); the crossover sits
// around a few hundred k flops.
constexpr int64_t kParallelWorkThreshold = 1 << 18;

// Rows-per-chunk for row-parallel kernels: every output row is computed
// independently and in a fixed accumulation order, so chunk boundaries
// (and hence thread count) cannot change the result bitwise.
int64_t RowGrain(int64_t rows, int64_t work_per_row) {
  const int64_t min_rows =
      std::max<int64_t>(1, kParallelWorkThreshold / (4 * work_per_row + 1));
  const int64_t per_thread = std::max<int64_t>(
      1, rows / (4 * util::GlobalPool().thread_count()));
  return std::max(min_rows, per_thread);
}

// Dense core over output rows [i_begin, i_end): register-blocked ijk
// order. Each 4x8 (or 1x8 in the row remainder) block of the output is
// seeded from `po`, held in vector registers across the whole kk sweep,
// and stored back once — the redundant per-kk output loads/stores of a
// streaming saxpy kernel disappear, and each loaded b row chunk still
// feeds four output rows from registers. Per-(i, j) accumulation order
// stays the plain sequential kk order in the block, column-remainder and
// row-remainder paths alike, so results are bitwise identical to the
// rank-1/saxpy formulation at any vector width (strict IEEE still; no
// -ffast-math).
//
// The j loops are independent per element, so the omp simd annotation
// cannot reorder any element's additions. GCC's -O2 cost model refuses
// to vectorize + scalarize the accumulator arrays, so the block is
// compiled at -O3 via IMSR_HOT (GCC-only; clang relies on the simd
// pragmas). The scalar dot-product kernel below is left at -O2 on
// purpose: its register tiles are already the fast shape and -O3's
// peeling slows them down.
IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
void MatMulRows(const float* __restrict__ pa, const float* __restrict__ pb,
                float* __restrict__ po, int64_t i_begin, int64_t i_end,
                int64_t k, int64_t n) {
  constexpr int64_t kBlock = 8;  // 4 rows x 8 cols = 8 xmm accumulators
  int64_t i = i_begin;
  for (; i + 4 <= i_end; i += 4) {
    const float* __restrict__ a0 = pa + (i + 0) * k;
    const float* __restrict__ a1 = pa + (i + 1) * k;
    const float* __restrict__ a2 = pa + (i + 2) * k;
    const float* __restrict__ a3 = pa + (i + 3) * k;
    float* __restrict__ o0 = po + (i + 0) * n;
    float* __restrict__ o1 = po + (i + 1) * n;
    float* __restrict__ o2 = po + (i + 2) * n;
    float* __restrict__ o3 = po + (i + 3) * n;
    int64_t jb = 0;
    for (; jb + kBlock <= n; jb += kBlock) {
      float acc0[kBlock], acc1[kBlock], acc2[kBlock], acc3[kBlock];
      IMSR_SIMD_PRAGMA()
      for (int64_t j = 0; j < kBlock; ++j) {
        acc0[j] = o0[jb + j];
        acc1[j] = o1[jb + j];
        acc2[j] = o2[jb + j];
        acc3[j] = o3[jb + j];
      }
      for (int64_t kk = 0; kk < k; ++kk) {
        const float a0k = a0[kk];
        const float a1k = a1[kk];
        const float a2k = a2[kk];
        const float a3k = a3[kk];
        const float* __restrict__ brow = pb + kk * n + jb;
        IMSR_SIMD_PRAGMA()
        for (int64_t j = 0; j < kBlock; ++j) {
          acc0[j] += a0k * brow[j];
          acc1[j] += a1k * brow[j];
          acc2[j] += a2k * brow[j];
          acc3[j] += a3k * brow[j];
        }
      }
      IMSR_SIMD_PRAGMA()
      for (int64_t j = 0; j < kBlock; ++j) {
        o0[jb + j] = acc0[j];
        o1[jb + j] = acc1[j];
        o2[jb + j] = acc2[j];
        o3[jb + j] = acc3[j];
      }
    }
    for (; jb < n; ++jb) {
      float acc0 = o0[jb], acc1 = o1[jb], acc2 = o2[jb], acc3 = o3[jb];
      for (int64_t kk = 0; kk < k; ++kk) {
        const float bkj = pb[kk * n + jb];
        acc0 += a0[kk] * bkj;
        acc1 += a1[kk] * bkj;
        acc2 += a2[kk] * bkj;
        acc3 += a3[kk] * bkj;
      }
      o0[jb] = acc0;
      o1[jb] = acc1;
      o2[jb] = acc2;
      o3[jb] = acc3;
    }
  }
  for (; i < i_end; ++i) {
    const float* __restrict__ arow = pa + i * k;
    float* __restrict__ orow = po + i * n;
    int64_t jb = 0;
    for (; jb + kBlock <= n; jb += kBlock) {
      float acc[kBlock];
      IMSR_SIMD_PRAGMA()
      for (int64_t j = 0; j < kBlock; ++j) acc[j] = orow[jb + j];
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = arow[kk];
        const float* __restrict__ brow = pb + kk * n + jb;
        IMSR_SIMD_PRAGMA()
        for (int64_t j = 0; j < kBlock; ++j) acc[j] += aik * brow[j];
      }
      IMSR_SIMD_PRAGMA()
      for (int64_t j = 0; j < kBlock; ++j) orow[jb + j] = acc[j];
    }
    for (; jb < n; ++jb) {
      float acc = orow[jb];
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * pb[kk * n + jb];
      orow[jb] = acc;
    }
  }
}

// Core for A^T * B: out[i][j] += sum_t a[t][i] * b[t][j], accumulated
// with t ascending per element — exactly the order a rank-1-update
// formulation (out += a.row(t)^T * b.row(t), t ascending) produces, so
// the kernel stays bitwise interchangeable with MatMul(Transpose(a), b).
// Register-blocked like MatMulRows: each 16-wide output chunk is seeded
// from `po`, kept in registers across the whole t sweep, and stored back
// once; the a column is re-read per block (stride-m scalar loads), which
// is cheap at routing-loop sizes. Same order-preserving vectorization
// treatment as above — the j lanes are independent elements, so vector
// width cannot reorder any element's additions.
IMSR_SIMD_CLONES
void MatMulTransARank1(const float* __restrict__ pa,
                       const float* __restrict__ pb, float* __restrict__ po,
                       int64_t r, int64_t m, int64_t n) {
  constexpr int64_t kBlock = 16;  // 4 xmm accumulators per output chunk
  // Tile the t sweep so each (kTileT x n) chunk of b — and the matching
  // chunk of a — stays L1-resident across the whole i sweep. Untiled,
  // every output row re-streams the full r x n b matrix from L2/L3,
  // which dominates this kernel at training shapes (r ~ 1000). Tiles are
  // visited in ascending order and t ascends within each, so every
  // (i, j) element still sees the plain sequential-t accumulation order:
  // the tiling is bitwise invisible.
  constexpr int64_t kTileT = 64;
  for (int64_t t0 = 0; t0 < r; t0 += kTileT) {
    const int64_t t_end = std::min(r, t0 + kTileT);
    for (int64_t i = 0; i < m; ++i) {
      float* __restrict__ orow = po + i * n;
      int64_t jb = 0;
      for (; jb + kBlock <= n; jb += kBlock) {
        float acc[kBlock];
        IMSR_SIMD_PRAGMA()
        for (int64_t j = 0; j < kBlock; ++j) acc[j] = orow[jb + j];
        for (int64_t t = t0; t < t_end; ++t) {
          const float ati = pa[t * m + i];
          const float* __restrict__ brow = pb + t * n + jb;
          IMSR_SIMD_PRAGMA()
          for (int64_t j = 0; j < kBlock; ++j) acc[j] += ati * brow[j];
        }
        IMSR_SIMD_PRAGMA()
        for (int64_t j = 0; j < kBlock; ++j) orow[jb + j] = acc[j];
      }
      for (; jb < n; ++jb) {
        float acc = orow[jb];
        for (int64_t t = t0; t < t_end; ++t) {
          acc += pa[t * m + i] * pb[t * n + jb];
        }
        orow[jb] = acc;
      }
    }
  }
}
IMSR_HOT_END

// Dot-product core for A * B^T over output rows [i_begin, i_end): 2x4
// register tiles (8 independent accumulator chains) with every lane using
// the same sequential kk order, so tile/remainder placement cannot change
// a result bitwise.
void MatMulTransBRows(const float* __restrict__ pa,
                      const float* __restrict__ pb, float* __restrict__ po,
                      int64_t i_begin, int64_t i_end, int64_t k, int64_t n) {
  int64_t i = i_begin;
  for (; i + 2 <= i_end; i += 2) {
    const float* __restrict__ a0 = pa + (i + 0) * k;
    const float* __restrict__ a1 = pa + (i + 1) * k;
    float* __restrict__ o0 = po + (i + 0) * n;
    float* __restrict__ o1 = po + (i + 1) * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict__ b0 = pb + (j + 0) * k;
      const float* __restrict__ b1 = pb + (j + 1) * k;
      const float* __restrict__ b2 = pb + (j + 2) * k;
      const float* __restrict__ b3 = pb + (j + 3) * k;
      float acc00 = 0.0f, acc01 = 0.0f, acc02 = 0.0f, acc03 = 0.0f;
      float acc10 = 0.0f, acc11 = 0.0f, acc12 = 0.0f, acc13 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        const float a0k = a0[kk];
        const float a1k = a1[kk];
        acc00 += a0k * b0[kk];
        acc01 += a0k * b1[kk];
        acc02 += a0k * b2[kk];
        acc03 += a0k * b3[kk];
        acc10 += a1k * b0[kk];
        acc11 += a1k * b1[kk];
        acc12 += a1k * b2[kk];
        acc13 += a1k * b3[kk];
      }
      o0[j + 0] = acc00;
      o0[j + 1] = acc01;
      o0[j + 2] = acc02;
      o0[j + 3] = acc03;
      o1[j + 0] = acc10;
      o1[j + 1] = acc11;
      o1[j + 2] = acc12;
      o1[j + 3] = acc13;
    }
    for (; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      float acc0 = 0.0f;
      float acc1 = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc0 += a0[kk] * brow[kk];
        acc1 += a1[kk] * brow[kk];
      }
      o0[j] = acc0;
      o1[j] = acc1;
    }
  }
  for (; i < i_end; ++i) {
    const float* __restrict__ arow = pa + i * k;
    float* __restrict__ orow = po + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
}

// Vectorized twin of MatMulTransBRows: same 2x4 register tile, but the kk
// loop carries an omp simd reduction, so each accumulator becomes a
// vector of per-lane partial sums combined at the end. That reorders the
// floating-point additions of each dot product — results agree with the
// scalar kernel only to rounding (see the tolerance contract in
// DESIGN.md section 11), which is why dispatch goes through SimdEnabled().
// Still deterministic: lane count is fixed at build time and every
// (i, j) dot is computed whole inside one task, so thread count and tile
// placement cannot change a bit.
IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
void MatMulTransBRowsSimd(const float* __restrict__ pa,
                          const float* __restrict__ pb,
                          float* __restrict__ po, int64_t i_begin,
                          int64_t i_end, int64_t k, int64_t n) {
  int64_t i = i_begin;
  for (; i + 2 <= i_end; i += 2) {
    const float* __restrict__ a0 = pa + (i + 0) * k;
    const float* __restrict__ a1 = pa + (i + 1) * k;
    float* __restrict__ o0 = po + (i + 0) * n;
    float* __restrict__ o1 = po + (i + 1) * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* __restrict__ b0 = pb + (j + 0) * k;
      const float* __restrict__ b1 = pb + (j + 1) * k;
      const float* __restrict__ b2 = pb + (j + 2) * k;
      const float* __restrict__ b3 = pb + (j + 3) * k;
      float acc00 = 0.0f, acc01 = 0.0f, acc02 = 0.0f, acc03 = 0.0f;
      float acc10 = 0.0f, acc11 = 0.0f, acc12 = 0.0f, acc13 = 0.0f;
      IMSR_SIMD_PRAGMA(reduction(+ : acc00, acc01, acc02, acc03, acc10,
                                 acc11, acc12, acc13))
      for (int64_t kk = 0; kk < k; ++kk) {
        const float a0k = a0[kk];
        const float a1k = a1[kk];
        acc00 += a0k * b0[kk];
        acc01 += a0k * b1[kk];
        acc02 += a0k * b2[kk];
        acc03 += a0k * b3[kk];
        acc10 += a1k * b0[kk];
        acc11 += a1k * b1[kk];
        acc12 += a1k * b2[kk];
        acc13 += a1k * b3[kk];
      }
      o0[j + 0] = acc00;
      o0[j + 1] = acc01;
      o0[j + 2] = acc02;
      o0[j + 3] = acc03;
      o1[j + 0] = acc10;
      o1[j + 1] = acc11;
      o1[j + 2] = acc12;
      o1[j + 3] = acc13;
    }
    for (; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      float acc0 = 0.0f;
      float acc1 = 0.0f;
      IMSR_SIMD_PRAGMA(reduction(+ : acc0, acc1))
      for (int64_t kk = 0; kk < k; ++kk) {
        acc0 += a0[kk] * brow[kk];
        acc1 += a1[kk] * brow[kk];
      }
      o0[j] = acc0;
      o1[j] = acc1;
    }
  }
  for (; i < i_end; ++i) {
    const float* __restrict__ arow = pa + i * k;
    float* __restrict__ orow = po + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      float acc = 0.0f;
      IMSR_SIMD_PRAGMA(reduction(+ : acc))
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
}
IMSR_HOT_END

// Panel dot kernel for the serve scoring path: `pat` is one panel of
// the panelized k-major layout (PanelizeKMajorInto) — `panel_rows` items
// stored column-major, element (i, kk) at pat[kk * panel_rows + i] — so
// the item axis is the fastest-moving one and SIMD lanes run ACROSS
// output rows — kLanes independent (i, j) elements per vector — while
// every element's kk loop stays strictly sequential. Order-preserving
// class: the vector width never touches a reduction, so the bits equal
// MatMulTransBRows' scalar dot order for any SimdEnabled setting, any
// operand width n, and any row-range split. (a * b == b * a bitwise
// under IEEE 754, so the broadcast-multiply form below matches the
// scalar dot exactly.)
//
// Row indices are panel-relative; `po` points at the output for row
// r_begin — stores are range-relative, so a caller can hand each row
// range its own tile (the blocked serve scoring loop) or offsets into
// one full matrix (the parallel split).
IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
void MatMulTransBPanelRows(const float* __restrict__ pat,
                           const float* __restrict__ pb,
                           float* __restrict__ po, int64_t r_begin,
                           int64_t r_end, int64_t panel_rows, int64_t k,
                           int64_t n) {
  constexpr int64_t kLanes = 16;  // output rows advanced per vector group
  constexpr int64_t kCols = 4;    // b rows per register tile
  int64_t i = r_begin;
  for (; i + kLanes <= r_end; i += kLanes) {
    for (int64_t jb = 0; jb < n; jb += kCols) {
      const int64_t jn = std::min<int64_t>(kCols, n - jb);
      float acc[kCols][kLanes];
      for (int64_t jj = 0; jj < jn; ++jj) {
        IMSR_SIMD_PRAGMA()
        for (int64_t l = 0; l < kLanes; ++l) acc[jj][l] = 0.0f;
      }
      for (int64_t kk = 0; kk < k; ++kk) {
        const float* __restrict__ acol = pat + kk * panel_rows + i;
        for (int64_t jj = 0; jj < jn; ++jj) {
          const float bjk = pb[(jb + jj) * k + kk];
          IMSR_SIMD_PRAGMA()
          for (int64_t l = 0; l < kLanes; ++l) acc[jj][l] += bjk * acol[l];
        }
      }
      for (int64_t jj = 0; jj < jn; ++jj) {
        for (int64_t l = 0; l < kLanes; ++l) {
          po[(i - r_begin + l) * n + jb + jj] = acc[jj][l];
        }
      }
    }
  }
  // Scalar remainder: same per-element kk order, so where the split lands
  // cannot change a bit.
  for (; i < r_end; ++i) {
    float* __restrict__ orow = po + (i - r_begin) * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += pat[kk * panel_rows + i] * brow[kk];
      }
      orow[j] = acc;
    }
  }
}
IMSR_HOT_END

// Walks the panels covering global rows [i_begin, i_end), writing
// range-relative output — shared by the public range entry and the
// parallel chunks of the full entry.
void PanelRangeImpl(ConstMatrixView a_panels, ConstMatrixView b,
                    int64_t i_begin, int64_t i_end, float* out) {
  const int64_t m = a_panels.rows;
  const int64_t k = a_panels.cols;
  const int64_t n = b.rows;
  int64_t i = i_begin;
  float* po = out;
  while (i < i_end) {
    const int64_t p0 = (i / kKMajorPanelRows) * kKMajorPanelRows;
    const int64_t panel_rows = std::min<int64_t>(kKMajorPanelRows, m - p0);
    const int64_t r0 = i - p0;
    const int64_t r1 = std::min<int64_t>(panel_rows, i_end - p0);
    MatMulTransBPanelRows(a_panels.data + p0 * k, b.data, po, r0, r1,
                          panel_rows, k, n);
    po += (r1 - r0) * n;
    i = p0 + r1;
  }
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulInto(a, b, &out);
  return out;
}

void MatMulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(b.dim(), 2);
  IMSR_CHECK_EQ(a.size(1), b.size(0));
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  const int64_t n = b.size(1);
  out->ResizeUninitialized({m, n});
  out->Fill(0.0f);  // the saxpy kernel accumulates into the output
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  if (m * k * n >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(
        m, RowGrain(m, k * n), [&](int64_t begin, int64_t end) {
          MatMulRows(pa, pb, po, begin, end, k, n);
        });
  } else {
    MatMulRows(pa, pb, po, 0, m, k, n);
  }
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulTransBInto(a, b, &out);
  return out;
}

void MatMulTransBInto(const Tensor& a, const Tensor& b, Tensor* out) {
  IMSR_CHECK_EQ(b.dim(), 2);
  MatMulTransBInto(a, ViewOf(b), out);
}

void MatMulTransBInto(const Tensor& a, ConstMatrixView b, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(b.data != nullptr);
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(a.size(1), b.cols);
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  const int64_t n = b.rows;
  out->ResizeUninitialized({m, n});
  const float* pa = a.data();
  const float* pb = b.data;
  float* po = out->data();
  // Wide-output fast path: the dot-product kernels pay a horizontal
  // lane-combine per (i, j) dot, which dominates when k is modest and
  // there are many dots (the MatMul backward shape, m ~ batch tokens,
  // n = k = d). Transposing b once (n*k floats, pooled scratch) and
  // running the register-blocked saxpy core amortises that away — and
  // because MatMulRows accumulates each element in the same sequential
  // kk order as the scalar dot, this path reproduces MatMulTransBRows
  // bit for bit. Narrow outputs (routing logits, corpus ranking with a
  // handful of interests) keep the dot kernels: there the long-k dots
  // vectorize well and a transposed b would put the inner loop on a
  // strided column.
  if (SimdEnabled() && n >= 8 && m >= 16) {
    Tensor bt = Tensor::Uninitialized({k, n});
    float* pt = bt.data();
    for (int64_t j = 0; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      for (int64_t kk = 0; kk < k; ++kk) pt[kk * n + j] = brow[kk];
    }
    out->Fill(0.0f);  // the saxpy kernel accumulates into the output
    if (m * k * n >= kParallelWorkThreshold) {
      util::GlobalPool().ParallelFor(
          m, RowGrain(m, k * n), [&](int64_t begin, int64_t end) {
            MatMulRows(pa, pt, po, begin, end, k, n);
          });
    } else {
      MatMulRows(pa, pt, po, 0, m, k, n);
    }
    return;
  }
  auto* const rows_kernel =
      SimdEnabled() ? MatMulTransBRowsSimd : MatMulTransBRows;
  if (m * k * n >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(
        m, RowGrain(m, k * n), [&](int64_t begin, int64_t end) {
          rows_kernel(pa, pb, po, begin, end, k, n);
        });
  } else {
    rows_kernel(pa, pb, po, 0, m, k, n);
  }
}

void PanelizeKMajorInto(const Tensor& a, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  // Shape {m, k} like the source — the layout is panelized, but numel
  // and the logical dims are unchanged, so byte-level comparisons and
  // accounting keep working.
  out->ResizeUninitialized({m, k});
  const float* pa = a.data();
  float* po = out->data();
  for (int64_t p0 = 0; p0 < m; p0 += kKMajorPanelRows) {
    const int64_t rows = std::min<int64_t>(kKMajorPanelRows, m - p0);
    float* panel = po + p0 * k;
    for (int64_t r = 0; r < rows; ++r) {
      const float* __restrict__ arow = pa + (p0 + r) * k;
      for (int64_t kk = 0; kk < k; ++kk) panel[kk * rows + r] = arow[kk];
    }
  }
}

void MatMulTransBPanelInto(ConstMatrixView a_panels, ConstMatrixView b,
                           Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(a_panels.data != nullptr);
  IMSR_CHECK(b.data != nullptr);
  IMSR_CHECK_EQ(a_panels.cols, b.cols);  // both are k
  const int64_t m = a_panels.rows;
  const int64_t k = a_panels.cols;
  const int64_t n = b.rows;
  out->ResizeUninitialized({m, n});
  float* po = out->data();
  // One kernel for every width — no SimdEnabled() dispatch: the panel
  // layout makes the vectorized form order-preserving, so there is
  // nothing to gate. The serial/parallel choice only picks a row
  // partition, which the kernel's bits do not depend on.
  if (m * k * n >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(
        m, RowGrain(m, k * n), [&](int64_t begin, int64_t end) {
          PanelRangeImpl(a_panels, b, begin, end, po + begin * n);
        });
  } else {
    PanelRangeImpl(a_panels, b, 0, m, po);
  }
}

void MatMulTransBPanelRangeInto(ConstMatrixView a_panels, ConstMatrixView b,
                                int64_t i_begin, int64_t i_end, float* out) {
  IMSR_CHECK(a_panels.data != nullptr);
  IMSR_CHECK(b.data != nullptr);
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK_EQ(a_panels.cols, b.cols);  // both are k
  IMSR_CHECK_GE(i_begin, 0);
  IMSR_CHECK_LE(i_begin, i_end);
  IMSR_CHECK_LE(i_end, a_panels.rows);
  // Serial on purpose: callers block the row sweep precisely so each tile
  // stays cache-resident between the matmul and the reduction that
  // follows; fanning a tile out would defeat that. Same kernel body as
  // the full entry, so where the caller draws block boundaries cannot
  // change a bit.
  PanelRangeImpl(a_panels, b, i_begin, i_end, out);
}

void MatMulTransBGatherInto(const Tensor& a, ConstMatrixView b,
                            const int64_t* rows, int64_t num_rows,
                            Tensor* gathered, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(gathered != nullptr);
  IMSR_CHECK(b.data != nullptr);
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(a.size(1), b.cols);
  IMSR_CHECK_GE(num_rows, 1);
  const int64_t k = a.size(1);
  const int64_t n = b.rows;
  GatherRowsInto(a, rows, num_rows, gathered);
  out->ResizeUninitialized({num_rows, n});
  // Kernel choice follows the FULL (a rows x n) shape, not the gathered
  // one: the wide-output saxpy path is bit-identical to the scalar rows
  // kernel (see MatMulTransBInto), so when the full shape takes it, the
  // scalar kernel reproduces its rows here; otherwise the same dot
  // kernel the full shape dispatches to runs on the gathered rows. Per
  // the kernel contract each (i, j) dot is computed whole in the same kk
  // order for any row range, so the gathered rows match the full
  // product's bits.
  const bool full_wide = SimdEnabled() && n >= 8 && a.size(0) >= 16;
  auto* const rows_kernel = (!SimdEnabled() || full_wide)
                                ? MatMulTransBRows
                                : MatMulTransBRowsSimd;
  rows_kernel(gathered->data(), b.data, out->data(), 0, num_rows, k, n);
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulTransAInto(a, b, &out);
  return out;
}

void MatMulTransAInto(const Tensor& a, const Tensor& b, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(b.dim(), 2);
  IMSR_CHECK_EQ(a.size(0), b.size(0));
  const int64_t r = a.size(0);
  const int64_t m = a.size(1);
  const int64_t n = b.size(1);
  out->ResizeUninitialized({m, n});
  out->Fill(0.0f);  // rank-1 updates accumulate into the output
  MatMulTransARank1(a.data(), b.data(), out->data(), r, m, n);
}

Tensor MatMulSparse(const Tensor& a, const Tensor& b) {
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(b.dim(), 2);
  IMSR_CHECK_EQ(a.size(1), b.size(0));
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  const int64_t n = b.size(1);
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out;
  TransposeInto(a, &out);
  return out;
}

void TransposeInto(const Tensor& a, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(out != &a) << "TransposeInto output must not alias the input";
  IMSR_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0);
  const int64_t n = a.size(1);
  out->ResizeUninitialized({n, m});
  const float* __restrict__ pa = a.data();
  float* __restrict__ po = out->data();
  // 32x32 tiles: both the row-major reads and the strided writes stay
  // within a few cache lines per tile. A pure permutation — trivially
  // bitwise identical to the naive loop.
  constexpr int64_t kTile = 32;
  for (int64_t i0 = 0; i0 < m; i0 += kTile) {
    const int64_t i_end = std::min(m, i0 + kTile);
    for (int64_t j0 = 0; j0 < n; j0 += kTile) {
      const int64_t j_end = std::min(n, j0 + kTile);
      for (int64_t i = i0; i < i_end; ++i) {
        const float* __restrict__ arow = pa + i * n;
        for (int64_t j = j0; j < j_end; ++j) {
          po[j * m + i] = arow[j];
        }
      }
    }
  }
}

namespace {

// Scalar / vectorized dot-product and sum-of-squares cores. The simd
// variants carry per-lane partial sums (reduction clause), so their
// addition order differs from the scalar chain — reduction-class kernels
// under the DESIGN.md section 11 contract, dispatched on SimdEnabled().
IMSR_HOT_BEGIN
float DotSpanScalar(const float* __restrict__ pa,
                    const float* __restrict__ pb, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

IMSR_SIMD_CLONES
float DotSpanSimd(const float* __restrict__ pa,
                  const float* __restrict__ pb, int64_t n) {
  float acc = 0.0f;
  IMSR_SIMD_PRAGMA(reduction(+ : acc))
  for (int64_t i = 0; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

float SumSquaresSpanScalar(const float* __restrict__ pa, int64_t n) {
  float ss = 0.0f;
  for (int64_t i = 0; i < n; ++i) ss += pa[i] * pa[i];
  return ss;
}

IMSR_SIMD_CLONES
float SumSquaresSpanSimd(const float* __restrict__ pa, int64_t n) {
  float ss = 0.0f;
  IMSR_SIMD_PRAGMA(reduction(+ : ss))
  for (int64_t i = 0; i < n; ++i) ss += pa[i] * pa[i];
  return ss;
}
IMSR_HOT_END

}  // namespace

float DotSpan(const float* a, const float* b, int64_t n) {
  return SimdEnabled() ? DotSpanSimd(a, b, n) : DotSpanScalar(a, b, n);
}

Tensor MatVec(const Tensor& a, const Tensor& x) {
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(x.dim(), 1);
  IMSR_CHECK_EQ(a.size(1), x.numel());
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  Tensor out = Tensor::Uninitialized({m});
  const float* pa = a.data();
  const float* px = x.data();
  float* po = out.data();
  if (SimdEnabled()) {
    for (int64_t i = 0; i < m; ++i) po[i] = DotSpanSimd(pa + i * k, px, k);
  } else {
    for (int64_t i = 0; i < m; ++i) po[i] = DotSpanScalar(pa + i * k, px, k);
  }
  return out;
}

IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
Tensor MatVecTransA(const Tensor& a, const Tensor& x) {
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(x.dim(), 1);
  IMSR_CHECK_EQ(a.size(0), x.numel());
  const int64_t m = a.size(0);
  const int64_t k = a.size(1);
  // out[j] = sum_i a[i][j] x[i] over ascending i — the exact order
  // MatVec(Transpose(a), x) uses — streaming a row-major. Saxpy-shaped,
  // so vectorization preserves each out[j]'s accumulation order exactly.
  Tensor out({k});
  const float* __restrict__ pa = a.data();
  const float* __restrict__ px = x.data();
  float* __restrict__ po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    const float xi = px[i];
    const float* __restrict__ arow = pa + i * k;
    IMSR_SIMD_PRAGMA()
    for (int64_t j = 0; j < k; ++j) po[j] += xi * arow[j];
  }
  return out;
}
IMSR_HOT_END

Tensor MatVecBatch(const Tensor& a, const Tensor& xs) {
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(xs.dim(), 2);
  IMSR_CHECK_EQ(a.size(1), xs.size(1));
  // out[r][i] = dot(xs.row(r), a.row(i)) — exactly A * xs^T transposed.
  return MatMulTransB(xs, a);
}

float DotFlat(const Tensor& a, const Tensor& b) {
  IMSR_CHECK_EQ(a.numel(), b.numel());
  return DotSpan(a.data(), b.data(), a.numel());
}

float L2NormFlat(const Tensor& a) {
  const float ss = SimdEnabled() ? SumSquaresSpanSimd(a.data(), a.numel())
                                 : SumSquaresSpanScalar(a.data(), a.numel());
  return std::sqrt(ss);
}

namespace {

// `out` may alias `in` (SoftmaxRowsInPlace) — no __restrict__ here; the
// loops only ever touch matching indices, so aliasing is benign.
void SoftmaxSpanScalar(const float* in, float* out, int64_t n) {
  float max_value = in[0];
  for (int64_t i = 1; i < n; ++i) max_value = std::max(max_value, in[i]);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    out[i] = std::exp(in[i] - max_value);
    total += out[i];
  }
  for (int64_t i = 0; i < n; ++i) out[i] /= total;
}

// Branchless e^x for the vectorized softmax: Cephes-style range
// reduction (x = n ln2 + r, |r| <= ln2/2), a degree-5 polynomial for
// e^r, and 2^n built by exponent-field bit assembly — every step is
// float arithmetic plus one int convert, so the whole loop vectorizes
// where a libm call chain cannot. Max relative error ~2 ulp (~2.4e-7),
// an order below the reduction-class tolerance the SIMD softmax already
// carries for its reordered sum. Inputs are clamped to the finite-result
// range, which also keeps the exponent assembly in bounds.
inline float ExpApprox(float x) {
  x = x < -87.33654f ? -87.33654f : x;
  x = x > 88.72283f ? 88.72283f : x;
  // Round x/ln2 to the nearest integer with the 1.5*2^23 magic-number
  // trick (exact for |z| < 2^22; safe because -O2 never reassociates).
  const float z = x * 1.44269504088896341f;
  const float nf = (z + 12582912.0f) - 12582912.0f;
  // Two-part ln2 keeps r = x - n*ln2 accurate to float precision.
  const float r = (x - nf * 0.693359375f) - nf * -2.12194440e-4f;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = p * r * r + r + 1.0f;
  const auto biased = static_cast<uint32_t>(static_cast<int32_t>(nf) + 127);
  float scale;
  const uint32_t bits = biased << 23;
  std::memcpy(&scale, &bits, sizeof(scale));
  return p * scale;
}

// Vectorized twin. fp-max is order-insensitive; the exp goes through the
// polynomial ExpApprox (a few e-7 relative of libm) and the `total`
// reduction reorders additions — together the reduction-class tolerance
// the scalar twin's bitwise path escapes via SimdEnabled().
IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
void SoftmaxSpanSimd(const float* in, float* out, int64_t n) {
  float max_value = in[0];
  IMSR_SIMD_PRAGMA(reduction(max : max_value))
  for (int64_t i = 1; i < n; ++i) max_value = std::max(max_value, in[i]);
  IMSR_SIMD_PRAGMA()
  for (int64_t i = 0; i < n; ++i) out[i] = ExpApprox(in[i] - max_value);
  float total = 0.0f;
  IMSR_SIMD_PRAGMA(reduction(+ : total))
  for (int64_t i = 0; i < n; ++i) total += out[i];
  IMSR_SIMD_PRAGMA()
  for (int64_t i = 0; i < n; ++i) out[i] /= total;
}
IMSR_HOT_END

// Row-parallel softmax for 4-column matrices — the B2I routing shape
// (n x K) at the paper's default K=4, softmaxed thousands of times per
// optimizer step. Unrolling the row lets the compiler vectorize ACROSS
// rows (stride-4 interleaved loads) instead of inside a 4-lane span, and
// drops the per-row span-function call. The single reciprocal replaces
// four divides; with ExpApprox and the fixed-order 4-term sum this stays
// within the same reduction-class tolerance as SoftmaxSpanSimd.
IMSR_HOT_BEGIN
IMSR_SIMD_CLONES
// `out` may alias `in` (SoftmaxRowsInPlace): within a row every read
// happens before any write, and the simd pragma vouches for the absence
// of cross-iteration dependences, so no __restrict__ here.
void Softmax4RowsSimd(const float* in, float* out, int64_t rows) {
  // Pass 1: per-row max, stored as shifted exponent arguments. Stride-4
  // interleaved access, so this pass stays scalar — it is cheap.
  for (int64_t i = 0; i < rows; ++i) {
    const float a = in[4 * i];
    const float b = in[4 * i + 1];
    const float c = in[4 * i + 2];
    const float d = in[4 * i + 3];
    float m = a > b ? a : b;
    m = c > m ? c : m;
    m = d > m ? d : m;
    out[4 * i] = a - m;
    out[4 * i + 1] = b - m;
    out[4 * i + 2] = c - m;
    out[4 * i + 3] = d - m;
  }
  // Pass 2: the exponentials — the dominant cost — over the flat
  // contiguous buffer, where the polynomial pipeline vectorizes fully.
  const int64_t n4 = rows * 4;
  IMSR_SIMD_PRAGMA()
  for (int64_t j = 0; j < n4; ++j) out[j] = ExpApprox(out[j]);
  // Pass 3: one reciprocal per row replaces four divides; the 4-term sum
  // keeps a fixed association order (reduction-class tolerance).
  for (int64_t i = 0; i < rows; ++i) {
    const float ea = out[4 * i];
    const float eb = out[4 * i + 1];
    const float ec = out[4 * i + 2];
    const float ed = out[4 * i + 3];
    const float inv = 1.0f / (((ea + eb) + ec) + ed);
    out[4 * i] = ea * inv;
    out[4 * i + 1] = eb * inv;
    out[4 * i + 2] = ec * inv;
    out[4 * i + 3] = ed * inv;
  }
}
IMSR_HOT_END

// Resolves the span kernel once per matrix — the routing loop softmaxes
// thousands of 4-wide rows per step, so a per-span flag check and
// wrapper call are measurable overhead.
using SoftmaxSpanFn = void (*)(const float*, float*, int64_t);

SoftmaxSpanFn ResolveSoftmaxSpan() {
  return SimdEnabled() ? SoftmaxSpanSimd : SoftmaxSpanScalar;
}

}  // namespace

Tensor Softmax(const Tensor& a) {
  Tensor out;
  SoftmaxInto(a, &out);
  return out;
}

void SoftmaxInto(const Tensor& a, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(out != &a) << "SoftmaxInto output must not alias the input";
  IMSR_CHECK(a.dim() == 1 || a.dim() == 2);
  out->ResizeUninitialized(a.shape());
  const SoftmaxSpanFn span_fn = ResolveSoftmaxSpan();
  if (a.dim() == 1) {
    span_fn(a.data(), out->data(), a.numel());
    return;
  }
  const int64_t rows = a.size(0);
  const int64_t cols = a.size(1);
  const float* pa = a.data();
  float* po = out->data();
  if (cols == 4 && SimdEnabled()) {
    Softmax4RowsSimd(pa, po, rows);
    return;
  }
  const auto span_rows = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      span_fn(pa + i * cols, po + i * cols, cols);
    }
  };
  if (rows * cols >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(rows, RowGrain(rows, cols), span_rows);
  } else {
    span_rows(0, rows);
  }
}

void SoftmaxRowsInPlace(Tensor* a) {
  IMSR_CHECK(a != nullptr);
  IMSR_CHECK(a->dim() == 1 || a->dim() == 2);
  const int64_t rows = a->dim() == 1 ? 1 : a->size(0);
  const int64_t cols = a->dim() == 1 ? a->numel() : a->size(1);
  float* pa = a->data();
  if (cols == 4 && a->dim() == 2 && SimdEnabled()) {
    Softmax4RowsSimd(pa, pa, rows);
    return;
  }
  const SoftmaxSpanFn span_fn = ResolveSoftmaxSpan();
  const auto span_rows = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      span_fn(pa + i * cols, pa + i * cols, cols);
    }
  };
  if (rows * cols >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(rows, RowGrain(rows, cols), span_rows);
  } else {
    span_rows(0, rows);
  }
}

Tensor LogSumExpRows(const Tensor& a) {
  IMSR_CHECK(a.dim() == 1 || a.dim() == 2);
  const int64_t rows = a.dim() == 1 ? 1 : a.size(0);
  const int64_t cols = a.dim() == 1 ? a.numel() : a.size(1);
  Tensor out = Tensor::Uninitialized({rows});
  const bool simd = SimdEnabled();
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = a.data() + i * cols;
    float max_value = row[0];
    for (int64_t j = 1; j < cols; ++j) max_value = std::max(max_value, row[j]);
    float total = 0.0f;
    if (simd) {
      // Reduction class: per-lane partial sums reorder the additions.
      IMSR_SIMD_PRAGMA(reduction(+ : total))
      for (int64_t j = 0; j < cols; ++j) {
        total += std::exp(row[j] - max_value);
      }
    } else {
      for (int64_t j = 0; j < cols; ++j) {
        total += std::exp(row[j] - max_value);
      }
    }
    out.at(i) = max_value + std::log(total);
  }
  return out;
}

namespace {

// Shared driver for the elementwise nonlinearities: disjoint index ranges
// through the thread pool above the work threshold, inline below it.
// Chunk boundaries depend only on (numel, grain), so results are bitwise
// identical for any thread count.
template <typename ApplySpan>
void ElementwiseInto(const Tensor& a, Tensor* out, ApplySpan&& apply) {
  IMSR_CHECK(out != nullptr);
  out->ResizeUninitialized(a.shape());
  const float* pa = a.data();
  float* po = out->data();
  const int64_t n = a.numel();
  if (n >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(
        n, RowGrain(n, 1), [&](int64_t begin, int64_t end) {
          apply(pa, po, begin, end);
        });
  } else {
    apply(pa, po, 0, n);
  }
}

}  // namespace

// The nonlinearities are elementwise — order-preserving by construction.
// The transcendental calls (exp/tanh) stay scalar libm under the simd
// annotation (no -ffast-math, no vector math library), so every element's
// value is bitwise identical whether or not the surrounding arithmetic
// vectorizes.
Tensor Sigmoid(const Tensor& a) {
  Tensor out;
  ElementwiseInto(a, &out,
                  [](const float* pa, float* po, int64_t begin, int64_t end) {
                    IMSR_SIMD_PRAGMA()
                    for (int64_t i = begin; i < end; ++i) {
                      po[i] = 1.0f / (1.0f + std::exp(-pa[i]));
                    }
                  });
  return out;
}

Tensor Tanh(const Tensor& a) {
  Tensor out;
  ElementwiseInto(a, &out,
                  [](const float* pa, float* po, int64_t begin, int64_t end) {
                    IMSR_SIMD_PRAGMA()
                    for (int64_t i = begin; i < end; ++i) {
                      po[i] = std::tanh(pa[i]);
                    }
                  });
  return out;
}

Tensor Exp(const Tensor& a) {
  Tensor out;
  ElementwiseInto(a, &out,
                  [](const float* pa, float* po, int64_t begin, int64_t end) {
                    IMSR_SIMD_PRAGMA()
                    for (int64_t i = begin; i < end; ++i) {
                      po[i] = std::exp(pa[i]);
                    }
                  });
  return out;
}

Tensor SquashRows(const Tensor& a) {
  Tensor out;
  SquashRowsInto(a, &out);
  return out;
}

IMSR_SIMD_CLONES
void SquashRowsInto(const Tensor& a, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(out != &a) << "SquashRowsInto output must not alias the input";
  IMSR_CHECK(a.dim() == 1 || a.dim() == 2);
  const int64_t rows = a.dim() == 1 ? 1 : a.size(0);
  const int64_t cols = a.dim() == 1 ? a.numel() : a.size(1);
  out->ResizeUninitialized(a.shape());
  const bool simd = SimdEnabled();
  for (int64_t i = 0; i < rows; ++i) {
    const float* in = a.data() + i * cols;
    float* po = out->data() + i * cols;
    // The |v|^2 sum is a reduction (reordered under SIMD); the final
    // coeff * v scale is elementwise and order-preserving.
    const float ss = simd ? SumSquaresSpanSimd(in, cols)
                          : SumSquaresSpanScalar(in, cols);
    const float norm = std::sqrt(ss);
    // squash(v) = |v|^2/(1+|v|^2) * v/|v|; zero rows map to zero.
    const float coeff = norm > 0.0f ? ss / (1.0f + ss) / norm : 0.0f;
    IMSR_SIMD_PRAGMA()
    for (int64_t j = 0; j < cols; ++j) po[j] = coeff * in[j];
  }
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  IMSR_CHECK(!parts.empty());
  int64_t rows = 0;
  const int64_t cols = parts[0].dim() == 2 ? parts[0].size(1)
                                           : parts[0].numel();
  for (const Tensor& part : parts) {
    IMSR_CHECK(part.dim() == 1 || part.dim() == 2);
    const int64_t part_cols =
        part.dim() == 2 ? part.size(1) : part.numel();
    IMSR_CHECK_EQ(part_cols, cols);
    rows += part.dim() == 2 ? part.size(0) : 1;
  }
  Tensor out = Tensor::Uninitialized({rows, cols});
  int64_t row = 0;
  for (const Tensor& part : parts) {
    const int64_t part_rows = part.dim() == 2 ? part.size(0) : 1;
    std::copy_n(part.data(), static_cast<size_t>(part_rows * cols),
                out.data() + row * cols);
    row += part_rows;
  }
  return out;
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices) {
  Tensor out;
  GatherRowsInto(table, indices.data(),
                 static_cast<int64_t>(indices.size()), &out);
  return out;
}

void GatherRowsInto(const Tensor& table, const int64_t* indices,
                    int64_t count, Tensor* out) {
  IMSR_CHECK(out != nullptr);
  IMSR_CHECK(out != &table) << "GatherRowsInto must not alias the table";
  IMSR_CHECK_EQ(table.dim(), 2);
  IMSR_CHECK_GT(count, 0);
  const int64_t cols = table.size(1);
  out->ResizeUninitialized({count, cols});
  float* po = out->data();
  const auto gather_rows = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const int64_t row = indices[i];
      IMSR_CHECK(row >= 0 && row < table.size(0))
          << "gather index " << row << " out of range " << table.size(0);
      std::copy_n(table.data() + row * cols, static_cast<size_t>(cols),
                  po + i * cols);
    }
  };
  if (count * cols >= kParallelWorkThreshold) {
    util::GlobalPool().ParallelFor(count, RowGrain(count, cols),
                                   gather_rows);
  } else {
    gather_rows(0, count);
  }
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  IMSR_CHECK(SameShape(a, b));
  float worst = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  // fp-max is order-insensitive, so this reduction is bitwise-safe to
  // vectorize unconditionally.
  IMSR_SIMD_PRAGMA(reduction(max : worst))
  for (int64_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::fabs(pa[i] - pb[i]));
  }
  return worst;
}

}  // namespace imsr::nn
