// Portable SIMD gate for the nn kernels (DESIGN.md section 11).
//
// Vectorization is expressed with `#pragma omp simd` annotations — pure
// compiler hints under -fopenmp-simd, no OpenMP runtime — so the same
// source serves GCC and clang on any ISA. Two classes of loop:
//
//  * Order-preserving loops (saxpy, elementwise maps, optimizer updates):
//    every output element is an independent chain of the same scalar
//    operations, so vectorizing them cannot change a single bit. These
//    are annotated unconditionally with IMSR_SIMD_PRAGMA and have no
//    scalar twin.
//
//  * Reduction loops (dot products, softmax/logsumexp sums, norms): the
//    vectorized form keeps per-lane partial sums, which reorders the
//    floating-point additions and can change results within rounding
//    error. These kernels keep an exact scalar path and dispatch on
//    SimdEnabled() so `IMSR_SIMD=off` (env) or -DIMSR_SIMD=OFF (build)
//    restores the historical bit patterns.
//
// The gate mirrors the buffer pool's triple (util/buffer_pool.h):
// compile-time IMSR_SIMD_ENABLED, env var IMSR_SIMD, runtime
// SetSimdEnabled for tests.
#ifndef IMSR_NN_SIMD_H_
#define IMSR_NN_SIMD_H_

// Defined (0/1) on the command line by CMake's IMSR_SIMD option; default
// to off when absent so builds without -fopenmp-simd never emit omp
// pragmas the compiler might warn about.
#ifndef IMSR_SIMD_ENABLED
#define IMSR_SIMD_ENABLED 0
#endif

#if IMSR_SIMD_ENABLED
#define IMSR_SIMD_PRAGMA_IMPL(directive) _Pragma(#directive)
// IMSR_SIMD_PRAGMA(clauses...) expands to `#pragma omp simd clauses`.
// Reduction loops pass reduction(+ : acc); order-preserving loops pass
// nothing.
#define IMSR_SIMD_PRAGMA(...) IMSR_SIMD_PRAGMA_IMPL(omp simd __VA_ARGS__)
#else
#define IMSR_SIMD_PRAGMA(...)
#endif

// Per-function multi-versioning for the hottest kernels: compile an AVX2
// clone next to the baseline (SSE2) body and pick at load time via the
// resolver GCC/glibc generate (ifunc). target("avx2") widens the vector
// unit WITHOUT enabling FMA, so no multiply-add contraction happens and
// every element's scalar operation chain — hence every bit of an
// order-preserving kernel's output — is unchanged; only reduction
// kernels see a (tolerance-class) partial-sum reshuffle, exactly as the
// contract above already allows for vectorized reductions. Gated on the
// same switch as the pragmas so -DIMSR_SIMD=OFF is pure baseline.
#if IMSR_SIMD_ENABLED && defined(__x86_64__) && defined(__GNUC__) && \
    !defined(__clang__)
#define IMSR_SIMD_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define IMSR_SIMD_CLONES
#endif

namespace imsr::nn {

// True when the build compiled the vectorized reduction kernels in
// (-DIMSR_SIMD=ON, the default).
bool SimdCompiledIn();

// True when the reduction kernels should take their vectorized path:
// compiled in AND not disabled via the IMSR_SIMD env var ("off"/"0"/
// "false", read once) or SetSimdEnabled. Order-preserving kernels ignore
// this — their vectorized form is bitwise identical by construction.
bool SimdEnabled();

// Test hook: force the reduction-kernel dispatch either way (no-op
// upgrade attempts when the SIMD paths are compiled out). Returns the
// previous setting.
bool SetSimdEnabled(bool enabled);

}  // namespace imsr::nn

#endif  // IMSR_NN_SIMD_H_
