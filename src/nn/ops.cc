#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "nn/arena.h"
#include "nn/simd.h"
#include "util/hot.h"

namespace imsr::nn::ops {
namespace {

// True if the parent can receive gradient (avoids wasted work on consts).
bool Wants(const Var& v) { return v.requires_grad(); }

}  // namespace

Var Add(const Var& a, const Var& b) {
  IMSR_CHECK(SameShape(a.value(), b.value()));
  Tensor out = nn::Add(a.value(), b.value());
  return Var::MakeNode(std::move(out), {a, b}, [a, b](VarNode& node) {
    if (Wants(a)) a.node()->AccumulateGrad(node.grad);
    if (Wants(b)) b.node()->AccumulateGrad(node.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  IMSR_CHECK(SameShape(a.value(), b.value()));
  Tensor out = nn::Sub(a.value(), b.value());
  return Var::MakeNode(std::move(out), {a, b}, [a, b](VarNode& node) {
    if (Wants(a)) a.node()->AccumulateGrad(node.grad);
    if (Wants(b)) b.node()->AccumulateGrad(nn::Scale(node.grad, -1.0f));
  });
}

Var Mul(const Var& a, const Var& b) {
  IMSR_CHECK(SameShape(a.value(), b.value()));
  Tensor out = nn::Mul(a.value(), b.value());
  return Var::MakeNode(std::move(out), {a, b}, [a, b](VarNode& node) {
    if (Wants(a)) a.node()->AccumulateGrad(nn::Mul(node.grad, b.value()));
    if (Wants(b)) b.node()->AccumulateGrad(nn::Mul(node.grad, a.value()));
  });
}

Var Scale(const Var& a, float alpha) {
  Tensor out = nn::Scale(a.value(), alpha);
  return Var::MakeNode(std::move(out), {a}, [a, alpha](VarNode& node) {
    if (Wants(a)) a.node()->AccumulateGrad(nn::Scale(node.grad, alpha));
  });
}

Var AddScalar(const Var& a, float alpha) {
  Tensor out = a.value();
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) p[i] += alpha;
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (Wants(a)) a.node()->AccumulateGrad(node.grad);
  });
}

Var DivByScalar(const Var& a, const Var& s) {
  IMSR_CHECK_EQ(s.value().numel(), 1);
  const float denom = s.value().item();
  IMSR_CHECK_NE(denom, 0.0f) << "division by zero";
  Tensor out = nn::Scale(a.value(), 1.0f / denom);
  return Var::MakeNode(std::move(out), {a, s}, [a, s](VarNode& node) {
    const float denom = s.value().item();
    if (Wants(a)) {
      a.node()->AccumulateGrad(nn::Scale(node.grad, 1.0f / denom));
    }
    if (Wants(s)) {
      // d/ds (a/s) = -a / s^2.
      Tensor gs({1});
      gs.at(0) = -nn::DotFlat(node.grad, a.value()) / (denom * denom);
      s.node()->AccumulateGrad(std::move(gs));
    }
  });
}

Var ScaleRows(const Var& a, const Var& scale) {
  IMSR_CHECK_EQ(a.value().dim(), 2);
  const int64_t m = a.value().size(0);
  const int64_t d = a.value().size(1);
  IMSR_CHECK_EQ(scale.value().numel(), m);
  Tensor out = a.value();
  for (int64_t i = 0; i < m; ++i) {
    const float s = scale.value().data()[i];
    float* row = out.data() + i * d;
    for (int64_t j = 0; j < d; ++j) row[j] *= s;
  }
  return Var::MakeNode(std::move(out), {a, scale}, [a, scale](
                                                       VarNode& node) {
    const int64_t m = a.value().size(0);
    const int64_t d = a.value().size(1);
    if (Wants(a)) {
      Tensor ga = Tensor::Uninitialized(a.value().shape());
      for (int64_t i = 0; i < m; ++i) {
        const float s = scale.value().data()[i];
        const float* g = node.grad.data() + i * d;
        float* o = ga.data() + i * d;
        for (int64_t j = 0; j < d; ++j) o[j] = s * g[j];
      }
      a.node()->AccumulateGrad(std::move(ga));
    }
    if (Wants(scale)) {
      Tensor gs = Tensor::Uninitialized(scale.value().shape());
      for (int64_t i = 0; i < m; ++i) {
        gs.data()[i] = nn::DotSpan(node.grad.data() + i * d,
                                   a.value().data() + i * d, d);
      }
      scale.node()->AccumulateGrad(std::move(gs));
    }
  });
}

Var MatMul(const Var& a, const Var& b) {
  Tensor out = nn::MatMul(a.value(), b.value());
  return Var::MakeNode(std::move(out), {a, b}, [a, b](VarNode& node) {
    // dL/dA = G B^T ; dL/dB = A^T G — via the transposed-operand kernels,
    // no materialised Transpose.
    if (Wants(a)) {
      a.node()->AccumulateGrad(nn::MatMulTransB(node.grad, b.value()));
    }
    if (Wants(b)) {
      b.node()->AccumulateGrad(nn::MatMulTransA(a.value(), node.grad));
    }
  });
}

Var MatMulTransA(const Var& a, const Var& b) {
  Tensor out = nn::MatMulTransA(a.value(), b.value());
  return Var::MakeNode(std::move(out), {a, b}, [a, b](VarNode& node) {
    // y = A^T B: dL/dA = B G^T ; dL/dB = A G.
    if (Wants(a)) {
      a.node()->AccumulateGrad(nn::MatMulTransB(b.value(), node.grad));
    }
    if (Wants(b)) {
      b.node()->AccumulateGrad(nn::MatMul(a.value(), node.grad));
    }
  });
}

Var MatVec(const Var& a, const Var& x) {
  Tensor out = nn::MatVec(a.value(), x.value());
  return Var::MakeNode(std::move(out), {a, x}, [a, x](VarNode& node) {
    const int64_t m = a.value().size(0);
    const int64_t k = a.value().size(1);
    const float* __restrict__ g = node.grad.data();
    if (Wants(a)) {
      // dL/dA = g x^T (outer product) — elementwise, order-preserving.
      Tensor ga = Tensor::Uninitialized({m, k});
      const float* __restrict__ px = x.value().data();
      float* __restrict__ po = ga.data();
      for (int64_t i = 0; i < m; ++i) {
        const float gi = g[i];
        float* __restrict__ orow = po + i * k;
        IMSR_SIMD_PRAGMA()
        for (int64_t j = 0; j < k; ++j) orow[j] = gi * px[j];
      }
      a.node()->AccumulateGrad(std::move(ga));
    }
    if (Wants(x)) {
      // dL/dx = A^T g — saxpy over ascending i, order-preserving per
      // output element.
      Tensor gx({k});
      const float* __restrict__ pa = a.value().data();
      float* __restrict__ po = gx.data();
      for (int64_t i = 0; i < m; ++i) {
        const float gi = g[i];
        const float* __restrict__ arow = pa + i * k;
        IMSR_SIMD_PRAGMA()
        for (int64_t j = 0; j < k; ++j) po[j] += gi * arow[j];
      }
      x.node()->AccumulateGrad(std::move(gx));
    }
  });
}

Var MatVecTransA(const Var& a, const Var& x) {
  IMSR_CHECK_EQ(a.value().dim(), 2);
  IMSR_CHECK_EQ(x.value().dim(), 1);
  IMSR_CHECK_EQ(a.value().size(0), x.value().numel());
  Tensor out = nn::MatVecTransA(a.value(), x.value());
  return Var::MakeNode(std::move(out), {a, x}, [a, x](VarNode& node) {
    const int64_t m = a.value().size(0);
    const int64_t k = a.value().size(1);
    const float* g = node.grad.data();
    if (Wants(a)) {
      // y = A^T x: dL/dA = x g^T (outer product) — order-preserving.
      Tensor ga = Tensor::Uninitialized({m, k});
      const float* __restrict__ px = x.value().data();
      for (int64_t i = 0; i < m; ++i) {
        const float xi = px[i];
        float* __restrict__ o = ga.data() + i * k;
        IMSR_SIMD_PRAGMA()
        for (int64_t j = 0; j < k; ++j) o[j] = xi * g[j];
      }
      a.node()->AccumulateGrad(std::move(ga));
    }
    if (Wants(x)) {
      // dL/dx = A g — row dots through the shared scalar/SIMD dispatch.
      Tensor gx = Tensor::Uninitialized({m});
      const float* pa = a.value().data();
      for (int64_t i = 0; i < m; ++i) {
        gx.at(i) = nn::DotSpan(pa + i * k, g, k);
      }
      x.node()->AccumulateGrad(std::move(gx));
    }
  });
}

Var Transpose(const Var& a) {
  Tensor out = nn::Transpose(a.value());
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (Wants(a)) a.node()->AccumulateGrad(nn::Transpose(node.grad));
  });
}

Var Dot(const Var& a, const Var& b) {
  Tensor out({1});
  out.at(0) = nn::DotFlat(a.value(), b.value());
  return Var::MakeNode(std::move(out), {a, b}, [a, b](VarNode& node) {
    const float g = node.grad.at(0);
    if (Wants(a)) a.node()->AccumulateGrad(nn::Scale(b.value(), g));
    if (Wants(b)) b.node()->AccumulateGrad(nn::Scale(a.value(), g));
  });
}

Var Reshape(const Var& a, Shape shape) {
  Tensor out = a.value().Reshape(shape);
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (Wants(a)) {
      a.node()->AccumulateGrad(node.grad.Reshape(a.value().shape()));
    }
  });
}

Var Sum(const Var& a) {
  Tensor out({1});
  const float* p = a.value().data();
  float total = 0.0f;
  for (int64_t i = 0; i < a.value().numel(); ++i) total += p[i];
  out.at(0) = total;
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (Wants(a)) {
      a.node()->AccumulateGrad(
          Tensor::Full(a.value().shape(), node.grad.at(0)));
    }
  });
}

Var Mean(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().numel());
  return Scale(Sum(a), inv);
}

Var SumSquares(const Var& a) {
  Tensor out({1});
  const float* p = a.value().data();
  float total = 0.0f;
  for (int64_t i = 0; i < a.value().numel(); ++i) total += p[i] * p[i];
  out.at(0) = total;
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (Wants(a)) {
      a.node()->AccumulateGrad(
          nn::Scale(a.value(), 2.0f * node.grad.at(0)));
    }
  });
}

// The unary nonlinearities read their own output (node.value) in the
// backward pass instead of capturing a saved copy — the node already
// keeps the value alive for exactly as long as the closure.

Var Sigmoid(const Var& a) {
  Tensor out = nn::Sigmoid(a.value());
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (!Wants(a)) return;
    Tensor grad = Tensor::Uninitialized(node.value.shape());
    const float* y = node.value.data();
    const float* g = node.grad.data();
    float* o = grad.data();
    for (int64_t i = 0; i < node.value.numel(); ++i) {
      o[i] = g[i] * y[i] * (1.0f - y[i]);
    }
    a.node()->AccumulateGrad(std::move(grad));
  });
}

Var Tanh(const Var& a) {
  Tensor out = nn::Tanh(a.value());
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (!Wants(a)) return;
    Tensor grad = Tensor::Uninitialized(node.value.shape());
    const float* y = node.value.data();
    const float* g = node.grad.data();
    float* o = grad.data();
    for (int64_t i = 0; i < node.value.numel(); ++i) {
      o[i] = g[i] * (1.0f - y[i] * y[i]);
    }
    a.node()->AccumulateGrad(std::move(grad));
  });
}

Var Exp(const Var& a) {
  Tensor out = nn::Exp(a.value());
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (!Wants(a)) return;
    a.node()->AccumulateGrad(nn::Mul(node.grad, node.value));
  });
}

Var Relu(const Var& a) {
  Tensor out = a.value();
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) p[i] = std::max(p[i], 0.0f);
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (!Wants(a)) return;
    Tensor grad = Tensor::Uninitialized(node.value.shape());
    const float* y = node.value.data();
    const float* g = node.grad.data();
    float* o = grad.data();
    for (int64_t i = 0; i < node.value.numel(); ++i) {
      o[i] = y[i] > 0.0f ? g[i] : 0.0f;
    }
    a.node()->AccumulateGrad(std::move(grad));
  });
}

Var Softmax(const Var& a) {
  Tensor out = nn::Softmax(a.value());
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (!Wants(a)) return;
    // Row-wise Jacobian product: dx = y * (g - <g, y>). The <g, y> dot
    // goes through the scalar/SIMD reduction dispatch; the Jacobian
    // apply is elementwise (order-preserving).
    const Tensor& y_all = node.value;
    const int64_t rows = y_all.dim() == 2 ? y_all.size(0) : 1;
    const int64_t cols = y_all.dim() == 2 ? y_all.size(1) : y_all.numel();
    Tensor grad = Tensor::Uninitialized(y_all.shape());
    for (int64_t i = 0; i < rows; ++i) {
      const float* __restrict__ y = y_all.data() + i * cols;
      const float* __restrict__ g = node.grad.data() + i * cols;
      float* __restrict__ o = grad.data() + i * cols;
      const float dot = nn::DotSpan(g, y, cols);
      IMSR_SIMD_PRAGMA()
      for (int64_t j = 0; j < cols; ++j) o[j] = y[j] * (g[j] - dot);
    }
    a.node()->AccumulateGrad(std::move(grad));
  });
}

Var SquashRows(const Var& a) {
  Tensor out = nn::SquashRows(a.value());
  return Var::MakeNode(std::move(out), {a}, [a](VarNode& node) {
    if (!Wants(a)) return;
    // y = c(n) v with n = |v|, c(n) = n / (1 + n^2).
    // dL/dv = c g + (c'(n)/n) (v . g) v, c'(n) = (1 - n^2) / (1 + n^2)^2.
    const Tensor& v_all = a.value();
    const int64_t rows = v_all.dim() == 2 ? v_all.size(0) : 1;
    const int64_t cols = v_all.dim() == 2 ? v_all.size(1) : v_all.numel();
    Tensor grad = Tensor::Uninitialized(v_all.shape());
    for (int64_t i = 0; i < rows; ++i) {
      const float* __restrict__ v = v_all.data() + i * cols;
      const float* __restrict__ g = node.grad.data() + i * cols;
      float* __restrict__ o = grad.data() + i * cols;
      // Both accumulators are reductions (scalar/SIMD dispatch); splitting
      // the fused loop keeps the scalar path's per-accumulator order.
      const float ss = nn::DotSpan(v, v, cols);
      const float vg = nn::DotSpan(v, g, cols);
      const float n = std::sqrt(ss);
      if (n < 1e-12f) {
        for (int64_t j = 0; j < cols; ++j) o[j] = 0.0f;
        continue;
      }
      const float c = n / (1.0f + ss);
      const float c_prime = (1.0f - ss) / ((1.0f + ss) * (1.0f + ss));
      const float radial = c_prime / n * vg;
      IMSR_SIMD_PRAGMA()
      for (int64_t j = 0; j < cols; ++j) o[j] = c * g[j] + radial * v[j];
    }
    a.node()->AccumulateGrad(std::move(grad));
  });
}

Var GatherRows(const Var& table, const std::vector<int64_t>& indices) {
  Tensor out;
  GatherRowsInto(table.value(), indices.data(),
                 static_cast<int64_t>(indices.size()), &out);
  // The backward closure owns its index list through the graph's
  // allocator (ArenaArray), not a heap vector; skip the copy entirely
  // when no gradient will flow.
  ArenaArray<int64_t> saved;
  if (GradEnabled() && Wants(table)) {
    saved = ArenaArray<int64_t>(indices.data(), indices.size(),
                                CurrentGraphArena());
  }
  return Var::MakeNode(
      std::move(out), {table},
      [table, saved = std::move(saved)](VarNode& node) {
        if (!Wants(table)) return;
        // Scatter-add directly into the (typically huge) table gradient —
        // allocating a dense temporary per lookup would dominate training
        // time.
        VarNode* parent = table.node().get();
        if (!parent->grad.defined()) {
          parent->grad = Tensor::Zeros(table.value().shape());
        }
        const int64_t cols = table.value().size(1);
        for (size_t i = 0; i < saved.size(); ++i) {
          const float* __restrict__ g =
              node.grad.data() + static_cast<int64_t>(i) * cols;
          float* __restrict__ o = parent->grad.data() + saved[i] * cols;
          // Vectorizing only the inner (within-row) add keeps repeated
          // indices correct and each element's accumulation order intact.
          IMSR_SIMD_PRAGMA()
          for (int64_t j = 0; j < cols; ++j) o[j] += g[j];
        }
      });
}

Var ConcatRows(const std::vector<Var>& parts) {
  IMSR_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Var& part : parts) values.push_back(part.value());
  Tensor out = nn::ConcatRows(values);
  return Var::MakeNode(std::move(out), parts, [parts](VarNode& node) {
    int64_t row = 0;
    const int64_t cols = node.value.size(1);
    for (const Var& part : parts) {
      const int64_t part_rows =
          part.value().dim() == 2 ? part.value().size(0) : 1;
      if (Wants(part)) {
        Tensor grad = Tensor::Uninitialized(part.value().shape());
        std::copy_n(node.grad.data() + row * cols,
                    static_cast<size_t>(part_rows * cols), grad.data());
        part.node()->AccumulateGrad(std::move(grad));
      }
      row += part_rows;
    }
  });
}

Var RowSlice(const Var& a, int64_t begin, int64_t end) {
  Tensor out = a.value().RowSlice(begin, end);
  return Var::MakeNode(std::move(out), {a}, [a, begin](VarNode& node) {
    if (!Wants(a)) return;
    a.node()->AccumulateGradRows(node.grad, begin);
  });
}

Var RowVector(const Var& a, int64_t i) {
  Tensor out = a.value().Row(i);
  return Var::MakeNode(std::move(out), {a}, [a, i](VarNode& node) {
    if (!Wants(a)) return;
    a.node()->AccumulateGradRows(node.grad, i);
  });
}

Var NegLogSoftmax(const Var& scores, int64_t target) {
  const Tensor& s = scores.value();
  IMSR_CHECK_EQ(s.dim(), 1);
  IMSR_CHECK(target >= 0 && target < s.numel());
  const Tensor lse = nn::LogSumExpRows(s);
  Tensor out({1});
  out.at(0) = lse.at(0) - s.at(target);
  Tensor probs = nn::Softmax(s);
  return Var::MakeNode(
      std::move(out), {scores},
      [scores, probs = std::move(probs), target](VarNode& node) {
        if (!Wants(scores)) return;
        // d/ds = softmax(s) - onehot(target), times upstream scalar.
        Tensor grad = nn::Scale(probs, node.grad.at(0));
        grad.at(target) -= node.grad.at(0);
        scores.node()->AccumulateGrad(std::move(grad));
      });
}

Var KdSigmoidCrossEntropy(const Var& student_logits,
                          const Tensor& teacher_probs, float tau) {
  const Tensor& s = student_logits.value();
  IMSR_CHECK_EQ(s.dim(), 1);
  IMSR_CHECK_EQ(s.numel(), teacher_probs.numel());
  IMSR_CHECK_GT(tau, 0.0f);
  // Forward: sum_k BCE(sigma(s_k / tau); p_k), numerically via
  // softplus: BCE = softplus(z) - p z with z = s / tau.
  auto softplus = [](float z) {
    return z > 0.0f ? z + std::log1p(std::exp(-z)) : std::log1p(std::exp(z));
  };
  Tensor out({1});
  float total = 0.0f;
  for (int64_t k = 0; k < s.numel(); ++k) {
    const float z = s.at(k) / tau;
    total += softplus(z) - teacher_probs.at(k) * z;
  }
  out.at(0) = total;
  return Var::MakeNode(
      std::move(out), {student_logits},
      [student_logits, teacher_probs, tau](VarNode& node) {
        if (!Wants(student_logits)) return;
        // dBCE/ds_k = (sigma(s_k/tau) - p_k) / tau.
        const Tensor& s = student_logits.value();
        Tensor grad = Tensor::Uninitialized(s.shape());
        const float g = node.grad.at(0);
        for (int64_t k = 0; k < s.numel(); ++k) {
          const float sig = 1.0f / (1.0f + std::exp(-s.at(k) / tau));
          grad.at(k) = g * (sig - teacher_probs.at(k)) / tau;
        }
        student_logits.node()->AccumulateGrad(std::move(grad));
      });
}

Var KdSoftmaxCrossEntropy(const Var& student_logits,
                          const Tensor& teacher_probs, float tau) {
  const Tensor& s = student_logits.value();
  IMSR_CHECK_EQ(s.dim(), 1);
  IMSR_CHECK_EQ(s.numel(), teacher_probs.numel());
  IMSR_CHECK_GT(tau, 0.0f);
  Tensor scaled = nn::Scale(s, 1.0f / tau);
  const Tensor log_probs = [&scaled] {
    const Tensor lse = nn::LogSumExpRows(scaled);
    Tensor out(scaled.shape());
    for (int64_t k = 0; k < scaled.numel(); ++k) {
      out.at(k) = scaled.at(k) - lse.at(0);
    }
    return out;
  }();
  Tensor out({1});
  float total = 0.0f;
  for (int64_t k = 0; k < s.numel(); ++k) {
    total -= teacher_probs.at(k) * log_probs.at(k);
  }
  out.at(0) = total;
  Tensor student_probs = nn::Softmax(scaled);
  return Var::MakeNode(
      std::move(out), {student_logits},
      [student_logits, teacher_probs,
       student_probs = std::move(student_probs), tau](VarNode& node) {
        if (!Wants(student_logits)) return;
        // d/ds_k = (sum_j p_j) * q_k - p_k, all over tau; teacher need not
        // be normalised, hence the explicit sum.
        float teacher_mass = 0.0f;
        for (int64_t k = 0; k < teacher_probs.numel(); ++k) {
          teacher_mass += teacher_probs.at(k);
        }
        const float g = node.grad.at(0);
        Tensor grad = Tensor::Uninitialized(student_probs.shape());
        for (int64_t k = 0; k < grad.numel(); ++k) {
          grad.at(k) = g *
                       (teacher_mass * student_probs.at(k) -
                        teacher_probs.at(k)) /
                       tau;
        }
        student_logits.node()->AccumulateGrad(std::move(grad));
      });
}

}  // namespace imsr::nn::ops
