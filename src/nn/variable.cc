#include "nn/variable.h"

#include "nn/simd.h"

namespace imsr::nn {
namespace {

// Allocates a node from the thread's current graph arena (heap when none)
// so the control block and the VarNode land in one allocation.
std::shared_ptr<VarNode> NewNode() {
  GraphArena* arena = CurrentGraphArena();
  std::shared_ptr<VarNode> node =
      std::allocate_shared<VarNode>(ArenaAllocator<VarNode>(arena));
  node->arena = arena;
  return node;
}

}  // namespace

ParentList::~ParentList() {
  if (data_ == nullptr) return;
  for (size_t i = 0; i < size_; ++i) {
    data_[i].~shared_ptr<VarNode>();
  }
  if (arena_ != nullptr) {
    arena_->Deallocate(data_, capacity_ * sizeof(std::shared_ptr<VarNode>));
  } else {
    ::operator delete(data_);
  }
}

void ParentList::Reserve(size_t count, GraphArena* arena) {
  IMSR_CHECK(data_ == nullptr) << "ParentList::Reserve called twice";
  if (count == 0) return;
  arena_ = arena;
  capacity_ = count;
  const size_t bytes = count * sizeof(std::shared_ptr<VarNode>);
  data_ = static_cast<std::shared_ptr<VarNode>*>(
      arena != nullptr
          ? arena->Allocate(bytes, alignof(std::shared_ptr<VarNode>))
          : ::operator new(bytes));
}

void ParentList::Append(std::shared_ptr<VarNode> parent) {
  IMSR_DCHECK(size_ < capacity_);
  new (data_ + size_) std::shared_ptr<VarNode>(std::move(parent));
  ++size_;
}

void VarNode::AccumulateGrad(const Tensor& delta) {
  if (!grad.defined()) {
    grad = delta;
    return;
  }
  grad.AddInPlace(delta);
}

void VarNode::AccumulateGrad(Tensor&& delta) {
  if (!grad.defined()) {
    grad = std::move(delta);
    return;
  }
  grad.AddInPlace(delta);
}

IMSR_SIMD_CLONES
void VarNode::AccumulateGradRows(const Tensor& delta, int64_t row_begin) {
  IMSR_CHECK_EQ(value.dim(), 2);
  IMSR_CHECK_GE(row_begin, 0);
  if (!grad.defined()) grad = Tensor(value.shape());
  const int64_t offset = row_begin * value.size(1);
  IMSR_CHECK_LE(offset + delta.numel(), grad.numel());
  float* __restrict__ dst = grad.data() + offset;
  const float* __restrict__ src = delta.data();
  const int64_t n = delta.numel();
  // Order-preserving elementwise add — safe to vectorize unconditionally.
  IMSR_SIMD_PRAGMA()
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

Var::Var(Tensor value, bool requires_grad) {
  node_ = NewNode();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

void Var::ZeroGrad() {
  IMSR_CHECK(defined());
  node_->grad = Tensor();
}

Var Var::MakeNodeShell(Tensor value, const Var* parents, size_t count) {
  Var out;
  out.node_ = NewNode();
  out.node_->value = std::move(value);
  if (!GradEnabled()) return out;  // inference mode: constant, no tape
  bool requires_grad = false;
  for (size_t i = 0; i < count; ++i) {
    IMSR_CHECK(parents[i].defined());
    requires_grad = requires_grad || parents[i].requires_grad();
  }
  if (!requires_grad) return out;  // all-constant inputs: no tape either
  out.node_->requires_grad = true;
  out.node_->parents.Reserve(count, out.node_->arena);
  for (size_t i = 0; i < count; ++i) {
    out.node_->parents.Append(parents[i].node());
  }
  return out;
}

void Var::Backward() {
  IMSR_CHECK(defined());
  IMSR_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() requires a scalar loss";

  struct Frame {
    VarNode* node;
    size_t next_parent;
  };
  // Traversal scratch persists across sweeps (cleared, not freed), so a
  // steady-state Backward touches no allocator at all. Thread-local:
  // graphs are built and swept by their owning thread.
  thread_local std::vector<VarNode*> order;
  thread_local std::vector<Frame> stack;
  order.clear();
  stack.clear();

  // Iterative post-order DFS producing a topological order (parents before
  // children in `order`; we traverse it in reverse). The per-node visited
  // flag replaces a hash set; flags are cleared before returning.
  stack.push_back({node_.get(), 0});
  node_->visited = true;
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      VarNode* parent = frame.node->parents[frame.next_parent];
      ++frame.next_parent;
      if (parent->requires_grad && !parent->visited) {
        parent->visited = true;
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  node_->AccumulateGrad(Tensor::Ones(node_->value.shape()));
  // `order` is post-order: parents appear before children, so iterate from
  // the back (the root) towards the leaves.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VarNode* current = *it;
    if (current->backward_fn && current->grad.defined()) {
      current->backward_fn(*current);
    }
  }
  for (VarNode* node : order) node->visited = false;
}

}  // namespace imsr::nn
