#include "nn/variable.h"

#include <unordered_set>

namespace imsr::nn {

void VarNode::AccumulateGrad(const Tensor& delta) {
  if (!grad.defined()) {
    grad = Tensor::Zeros(value.shape());
  }
  grad.AddInPlace(delta);
}

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<VarNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::value() const {
  IMSR_CHECK(defined());
  return node_->value;
}

Tensor& Var::mutable_value() {
  IMSR_CHECK(defined());
  return node_->value;
}

bool Var::requires_grad() const {
  IMSR_CHECK(defined());
  return node_->requires_grad;
}

bool Var::has_grad() const {
  IMSR_CHECK(defined());
  return node_->grad.defined();
}

const Tensor& Var::grad() const {
  IMSR_CHECK(defined());
  IMSR_CHECK(node_->grad.defined()) << "no gradient accumulated";
  return node_->grad;
}

void Var::ZeroGrad() {
  IMSR_CHECK(defined());
  node_->grad = Tensor();
}

Var Var::MakeNode(Tensor value, std::vector<Var> parents,
                  std::function<void(VarNode&)> backward_fn) {
  Var out(std::move(value));
  for (const Var& parent : parents) {
    IMSR_CHECK(parent.defined());
    out.node_->parents.push_back(parent.node());
    if (parent.requires_grad()) out.node_->requires_grad = true;
  }
  if (out.node_->requires_grad) {
    out.node_->backward_fn = std::move(backward_fn);
  }
  return out;
}

void Var::Backward() {
  IMSR_CHECK(defined());
  IMSR_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() requires a scalar loss";

  // Iterative post-order DFS producing a topological order (parents before
  // children in `order`; we traverse it in reverse).
  std::vector<VarNode*> order;
  std::unordered_set<VarNode*> visited;
  std::vector<std::pair<VarNode*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [current, next_parent] = stack.back();
    if (next_parent < current->parents.size()) {
      VarNode* parent = current->parents[next_parent].get();
      ++next_parent;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(current);
      stack.pop_back();
    }
  }

  node_->AccumulateGrad(Tensor::Ones(node_->value.shape()));
  // `order` is post-order: parents appear before children, so iterate from
  // the back (the root) towards the leaves.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VarNode* current = *it;
    if (current->backward_fn && current->grad.defined()) {
      current->backward_fn(*current);
    }
  }
}

}  // namespace imsr::nn
