#include "nn/simd.h"

#include <atomic>

#include "util/env.h"

namespace imsr::nn {
namespace {

std::atomic<bool>& SimdFlag() {
  // Shared on/off env semantics (util/env.h): IMSR_SIMD=off|0|false|no
  // disables, garbage warns and keeps the compiled-in default.
  static std::atomic<bool> flag{
      IMSR_SIMD_ENABLED != 0 &&
      util::EnvEnabled("IMSR_SIMD", /*default_value=*/true)};
  return flag;
}

}  // namespace

bool SimdCompiledIn() { return IMSR_SIMD_ENABLED != 0; }

bool SimdEnabled() {
  return SimdFlag().load(std::memory_order_relaxed);
}

bool SetSimdEnabled(bool enabled) {
  // Can't enable what isn't compiled in.
  const bool target = enabled && SimdCompiledIn();
  return SimdFlag().exchange(target, std::memory_order_relaxed);
}

}  // namespace imsr::nn
