#include "nn/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace imsr::nn {
namespace {

bool EnvDisablesSimd() {
  const char* value = std::getenv("IMSR_SIMD");
  if (value == nullptr) return false;
  return std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0 ||
         std::strcmp(value, "false") == 0;
}

std::atomic<bool>& SimdFlag() {
  static std::atomic<bool> flag{IMSR_SIMD_ENABLED != 0 &&
                                !EnvDisablesSimd()};
  return flag;
}

}  // namespace

bool SimdCompiledIn() { return IMSR_SIMD_ENABLED != 0; }

bool SimdEnabled() {
  return SimdFlag().load(std::memory_order_relaxed);
}

bool SetSimdEnabled(bool enabled) {
  // Can't enable what isn't compiled in.
  const bool target = enabled && SimdCompiledIn();
  return SimdFlag().exchange(target, std::memory_order_relaxed);
}

}  // namespace imsr::nn
