// Metrics registry (imsr::obs pillar 1): named counters, gauges and
// fixed-bucket histograms with atomic hot-path recording. Instrument code
// through the IMSR_COUNTER_ADD / IMSR_GAUGE_SET / IMSR_HISTOGRAM_RECORD
// macros in obs/obs.h (they cache the registry lookup in a function-local
// static, so the steady-state cost is one or two relaxed atomic RMWs) and
// read results through Snapshot() + the JSON / CSV exporters.
//
// Naming scheme: "subsystem/metric" with lowercase snake-case components,
// e.g. "trainer/step_latency_ms", "nid/puzzlement", "pit/interests_trimmed".
// Unit suffixes (_ms, _bytes) go on the metric, never the subsystem.
#ifndef IMSR_OBS_METRICS_H_
#define IMSR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace imsr::obs {

// Monotonic event count. Add() is safe from any thread.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins instantaneous value. Set() is safe from any thread.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram over half-open intervals. `bounds` are the
// ascending bucket *edges*: bucket i counts bounds[i] <= v < bounds[i+1],
// values below bounds.front() land in the underflow bucket and values at
// or above bounds.back() in the overflow bucket (so there are
// bounds.size()-1 interior buckets). Also tracks count/sum/min/max.
// Record() is safe from any thread.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // 0 when empty.
  double min() const;
  double max() const;
  int64_t underflow() const {
    return underflow_.load(std::memory_order_relaxed);
  }
  int64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  int64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return buckets_.size(); }

  // Default edges for millisecond-scale latencies: 1 us .. 10 s.
  static std::vector<double> LatencyBoundsMs();
  // Default edges for KL / puzzlement values: 0 .. 2 nats.
  static std::vector<double> PuzzlementBounds();
  // Default edges for per-sample loss values: 0 .. 50 nats.
  static std::vector<double> LossBounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> underflow_{0};
  std::atomic<int64_t> overflow_{0};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<int64_t> buckets;
  int64_t underflow = 0;
  int64_t overflow = 0;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

// Bucket-interpolated quantile estimate from a histogram snapshot,
// deterministic for a given snapshot. `q` is clamped to [0, 1]. Mass is
// assumed uniform within each bucket; the underflow bucket spans
// [min, min(bounds.front(), max)] and the overflow bucket
// [bounds.back(), max], so degenerate shapes (all-underflow,
// all-overflow) interpolate between observed extremes instead of
// inventing values outside them. The result is clamped to [min, max];
// an empty histogram reports 0. The server's latency reporting (p50/p99)
// is built on this.
double HistogramQuantile(const HistogramSnapshot& histogram, double q);

// Point-in-time copy of every registered metric, names ascending within
// each kind (std::map iteration order), so exports are deterministic.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

// Thread-safe name -> metric registry. Get* registers on first use and
// returns a reference that stays valid for the registry's lifetime, so
// call sites may cache it. First registration wins: a histogram's bounds
// are fixed by whoever names it first.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds =
                              Histogram::LatencyBoundsMs());

  MetricsSnapshot Snapshot() const;
  // Zeroes every metric's value; registrations (and cached references)
  // stay valid.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Process-wide registry (never destroyed, so worker threads may record
// during static teardown).
MetricsRegistry& Registry();

// Compact deterministic JSON:
// {"counters":[{"name":...,"value":...}],"gauges":[...],"histograms":[...]}
// Histogram objects carry interpolated "p50"/"p90"/"p99" estimates next
// to count/sum/min/max (see HistogramQuantile).
std::string MetricsToJson(const MetricsSnapshot& snapshot);

// CSV with one row per metric:
// kind,name,value,count,sum,min,max,underflow,overflow,bounds,buckets,
// p50,p90,p99 (bounds/buckets are ';'-joined so the row count stays
// fixed; the quantile columns are empty for counters and gauges).
std::string MetricsToCsv(const MetricsSnapshot& snapshot);

// Writes JSON or CSV (chosen by a ".csv" suffix on `path`) atomically
// (tmp + rename), so a reader never sees a half-written file even while
// a periodic flusher is rewriting it. Returns false and fills `error` on
// I/O failure.
bool WriteMetricsFile(const std::string& path,
                      const MetricsSnapshot& snapshot, std::string* error);

}  // namespace imsr::obs

#endif  // IMSR_OBS_METRICS_H_
