// Instrumentation entry points for the imsr::obs subsystem. Production
// code instruments through these macros only, never the registry/recorder
// APIs directly, so a -DIMSR_OBS=OFF build (which defines
// IMSR_OBS_DISABLED) compiles every instrumentation site to nothing —
// the true zero-cost path verified by the bench_obs / BM_MatMulTransB
// overhead measurements in DESIGN.md section 8.
//
//   IMSR_TRACE_SPAN("trainer/epoch");            // RAII scope timer
//   IMSR_COUNTER_ADD("trainer/steps", 1);
//   IMSR_GAUGE_SET("pool/queue_depth", chunks);
//   IMSR_HISTOGRAM_RECORD("eval/rank_latency_ms", ms);   // latency edges
//   IMSR_HISTOGRAM_RECORD_WITH("nid/puzzlement",
//                              imsr::obs::Histogram::PuzzlementBounds(),
//                              kl);
//
// The metric macros cache the registry lookup in a function-local static,
// so after the first hit a record is one or two relaxed atomic RMWs. Name
// arguments must therefore be literals: one call site == one metric.
#ifndef IMSR_OBS_OBS_H_
#define IMSR_OBS_OBS_H_

#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(IMSR_OBS_DISABLED)

// Statement that exists only for instrumentation (e.g. a Stopwatch feeding
// a latency histogram): compiled out entirely with the macros.
#define IMSR_OBS_ONLY(...)

#define IMSR_TRACE_SPAN(name) \
  do {                        \
  } while (0)
#define IMSR_COUNTER_ADD(name, n) \
  do {                            \
  } while (0)
#define IMSR_GAUGE_SET(name, value) \
  do {                              \
  } while (0)
#define IMSR_HISTOGRAM_RECORD(name, value) \
  do {                                     \
  } while (0)
#define IMSR_HISTOGRAM_RECORD_WITH(name, bounds, value) \
  do {                                                  \
  } while (0)

#else  // !IMSR_OBS_DISABLED

#define IMSR_OBS_ONLY(...) __VA_ARGS__

#define IMSR_OBS_CONCAT_INNER(a, b) a##b
#define IMSR_OBS_CONCAT(a, b) IMSR_OBS_CONCAT_INNER(a, b)

#define IMSR_TRACE_SPAN(name)       \
  ::imsr::obs::ScopedSpan IMSR_OBS_CONCAT(imsr_obs_span_, __LINE__) { name }

#define IMSR_COUNTER_ADD(name, n)                                       \
  do {                                                                  \
    static ::imsr::obs::Counter& imsr_obs_counter =                     \
        ::imsr::obs::Registry().GetCounter(name);                       \
    imsr_obs_counter.Add(n);                                            \
  } while (0)

#define IMSR_GAUGE_SET(name, value)                                     \
  do {                                                                  \
    static ::imsr::obs::Gauge& imsr_obs_gauge =                         \
        ::imsr::obs::Registry().GetGauge(name);                         \
    imsr_obs_gauge.Set(value);                                          \
  } while (0)

#define IMSR_HISTOGRAM_RECORD(name, value)                              \
  do {                                                                  \
    static ::imsr::obs::Histogram& imsr_obs_histogram =                 \
        ::imsr::obs::Registry().GetHistogram(name);                     \
    imsr_obs_histogram.Record(value);                                   \
  } while (0)

#define IMSR_HISTOGRAM_RECORD_WITH(name, bounds, value)                 \
  do {                                                                  \
    static ::imsr::obs::Histogram& imsr_obs_histogram =                 \
        ::imsr::obs::Registry().GetHistogram(name, bounds);             \
    imsr_obs_histogram.Record(value);                                   \
  } while (0)

#endif  // IMSR_OBS_DISABLED

#endif  // IMSR_OBS_OBS_H_
