#include "obs/session.h"

#include <chrono>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/flags.h"

namespace imsr::obs {

ObsOptions ObsOptionsFromFlags(const util::Flags& flags) {
  ObsOptions options;
  options.metrics_out = flags.GetString("metrics_out", "");
  options.trace_out = flags.GetString("trace_out", "");
  options.metrics_interval_seconds = flags.GetDouble("metrics_interval", 0.0);
  return options;
}

ObsSession::ObsSession(ObsOptions options) : options_(std::move(options)) {
  if (!options_.trace_out.empty()) EnableTracing(true);
  // Any configured export is kept live: the trace writer works from a
  // snapshot (it does not drain), so rewriting it each interval is safe
  // and means a killed run still leaves files current to the last tick.
  if (options_.active() && options_.metrics_interval_seconds > 0.0) {
    flusher_ = std::thread([this] {
      const auto interval = std::chrono::duration<double>(
          options_.metrics_interval_seconds);
      std::unique_lock<std::mutex> lock(mutex_);
      while (!stop_cv_.wait_for(lock, interval, [this] { return stop_; })) {
        lock.unlock();
        Flush();
        lock.lock();
      }
    });
  }
}

ObsSession::~ObsSession() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    flusher_.join();
  }
  if (!options_.active()) return;
  // Final flush after the flusher has stopped: whatever accumulated since
  // the last periodic tick (the partial interval) reaches the files.
  Flush();
  if (!options_.trace_out.empty()) EnableTracing(false);
  std::printf("%s", MetricsSummaryTable().c_str());
}

void ObsSession::Flush() {
  if (!options_.metrics_out.empty()) FlushMetrics();
  if (!options_.trace_out.empty()) FlushTrace();
}

void ObsSession::FlushMetrics() {
  std::string error;
  if (!WriteMetricsFile(options_.metrics_out, Registry().Snapshot(),
                        &error)) {
    std::fprintf(stderr, "obs: %s\n", error.c_str());
  }
}

void ObsSession::FlushTrace() {
  std::string error;
  if (!WriteChromeTrace(options_.trace_out, &error)) {
    std::fprintf(stderr, "obs: %s\n", error.c_str());
  }
}

std::string MetricsSummaryTable() {
  const MetricsSnapshot snapshot = Registry().Snapshot();
  if (snapshot.empty()) return "";
  util::Table table({"metric", "kind", "value"});
  for (const CounterSnapshot& c : snapshot.counters) {
    table.AddRow({c.name, "counter", std::to_string(c.value)});
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    table.AddRow({g.name, "gauge", util::FormatDouble(g.value, 4)});
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const double mean =
        h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    table.AddRow({h.name, "histogram",
                  "n=" + std::to_string(h.count) +
                      " mean=" + util::FormatDouble(mean, 4) +
                      " max=" + util::FormatDouble(h.max, 4)});
  }
  return table.ToPrettyString();
}

}  // namespace imsr::obs
