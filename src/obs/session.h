// CLI-facing driver for the obs subsystem: turns the --metrics_out=,
// --trace_out= and --metrics_interval= flags into an RAII session that
// enables tracing, periodically flushes metrics while work runs, and on
// destruction writes the final metrics/trace files and prints a summary
// table of every recorded metric.
#ifndef IMSR_OBS_SESSION_H_
#define IMSR_OBS_SESSION_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

namespace imsr::util {
class Flags;
}  // namespace imsr::util

namespace imsr::obs {

struct ObsOptions {
  // Metrics export path; ".csv" suffix selects CSV, anything else JSON.
  // Empty disables metrics export.
  std::string metrics_out;
  // Chrome trace-event JSON export path; empty disables tracing.
  std::string trace_out;
  // > 0: rewrite `metrics_out` (atomically) every this-many seconds while
  // the session is alive, so long runs can be watched live.
  double metrics_interval_seconds = 0.0;

  bool active() const { return !metrics_out.empty() || !trace_out.empty(); }
};

// Reads --metrics_out / --trace_out / --metrics_interval.
ObsOptions ObsOptionsFromFlags(const util::Flags& flags);

class ObsSession {
 public:
  explicit ObsSession(ObsOptions options);
  // Stops the flusher, writes one last flush of every configured export
  // (so the final partial interval of a long run is never lost), prints
  // the summary table to stdout (only when any obs flag was set).
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  // Rewrites every configured export (metrics and/or trace) now. Safe to
  // call from any thread; both writers work from snapshots and the
  // metrics file is replaced atomically.
  void Flush();

 private:
  void FlushMetrics();
  void FlushTrace();

  ObsOptions options_;
  std::thread flusher_;
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
};

// Renders the current registry contents as the exit summary table
// (exposed for tests).
std::string MetricsSummaryTable();

}  // namespace imsr::obs

#endif  // IMSR_OBS_SESSION_H_
