#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace imsr::obs {
namespace {

// Hard cap per thread buffer so an always-on trace cannot exhaust memory;
// 1M events is ~32 MB and far beyond any sane single-run trace.
constexpr size_t kMaxEventsPerThread = 1 << 20;

struct ThreadBuffer {
  std::mutex mutex;  // uncontended except during export/clear
  std::vector<TraceEvent> events;
  int tid = 0;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<int64_t> dropped{0};
  std::mutex mutex;  // guards buffers
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

// Leaked on purpose: thread-local buffer owners may unwind after static
// teardown (pool workers joining at exit).
TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

// The calling thread's buffer, registered with the global state on first
// use. shared_ptr keeps exported buffers alive even after their thread
// exits.
ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto created = std::make_shared<ThreadBuffer>();
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    created->tid = static_cast<int>(state.buffers.size());
    state.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

}  // namespace

int64_t TraceNowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

bool TracingEnabled() {
  return State().enabled.load(std::memory_order_relaxed);
}

void EnableTracing(bool enabled) {
  State().enabled.store(enabled, std::memory_order_relaxed);
}

void RecordTraceSpan(const char* name, int64_t start_ns,
                     int64_t duration_ns) {
  if (!TracingEnabled()) return;
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    State().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back({name, start_ns, duration_ns, buffer.tid});
}

size_t TraceEventCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  size_t total = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

size_t TraceThreadCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.buffers.size();
}

int64_t TraceDroppedCount() {
  return State().dropped.load(std::memory_order_relaxed);
}

void ClearTrace() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  state.dropped.store(0, std::memory_order_relaxed);
}

std::string ExportChromeTrace() {
  std::vector<TraceEvent> events;
  {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (const auto& buffer : state.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     // Longer spans first so parents precede children.
                     return a.duration_ns > b.duration_ns;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buffer[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    // Chrome wants microseconds; keep ns precision with 3 decimals.
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"name\":\"%s\",\"cat\":\"imsr\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d}",
                  i > 0 ? "," : "", event.name,
                  static_cast<double>(event.start_ns) / 1e3,
                  static_cast<double>(event.duration_ns) / 1e3, event.tid);
    out += buffer;
  }
  out += "]}";
  return out;
}

bool WriteChromeTrace(const std::string& path, std::string* error) {
  const std::string body = ExportChromeTrace();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << body) || !out.flush()) {
      if (error != nullptr) *error = "cannot write " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace imsr::obs
