#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/check.h"

namespace imsr::obs {
namespace {

// Lock-free running min/max over an atomic<double>.
void AtomicMin(std::atomic<double>* slot, double v) {
  double current = slot->load(std::memory_order_relaxed);
  while (v < current &&
         !slot->compare_exchange_weak(current, v,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* slot, double v) {
  double current = slot->load(std::memory_order_relaxed);
  while (v > current &&
         !slot->compare_exchange_weak(current, v,
                                      std::memory_order_relaxed)) {
  }
}

// JSON-safe number rendering: finite shortest-round-trip-ish decimal,
// non-finite values clamp to 0 (JSON has no inf/nan).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

std::string JoinDoubles(const std::vector<double>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ';';
    out += JsonNumber(values[i]);
  }
  return out;
}

std::string JoinInts(const std::vector<int64_t>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(values[i]);
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() >= 2 ? bounds_.size() - 1 : 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  IMSR_CHECK_GE(bounds_.size(), 2u)
      << "histogram needs at least two bucket edges";
  IMSR_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket edges must be ascending";
}

void Histogram::Record(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
  if (v < bounds_.front()) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (v >= bounds_.back()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // First edge above v; the preceding interval [bounds_[i], bounds_[i+1])
  // is the bucket.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin()) - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

std::vector<double> Histogram::LatencyBoundsMs() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,  0.25,
          0.5,   1.0,    2.5,   5.0,  10.0,  25.0, 50.0, 100.0,
          250.0, 500.0,  1000.0, 2500.0, 10000.0};
}

std::vector<double> Histogram::PuzzlementBounds() {
  return {0.0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.1, 0.15,
          0.2, 0.3,  0.4,  0.6,  0.8,  1.0,  1.5, 2.0};
}

std::vector<double> Histogram::LossBounds() {
  return {0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0,
          6.0, 8.0,  12.0, 16.0, 24.0, 50.0};
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.buckets.resize(histogram->num_buckets());
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] = histogram->bucket(i);
    }
    h.underflow = histogram->underflow();
    h.overflow = histogram->overflow();
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.min = histogram->min();
    h.max = histogram->max();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

double HistogramQuantile(const HistogramSnapshot& histogram, double q) {
  if (histogram.count <= 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double target = q * static_cast<double>(histogram.count);
  // Walk the mass in value order: underflow, interior buckets, overflow.
  // Each segment is (lo, hi, count); the target rank interpolates
  // linearly inside the segment it lands in.
  const auto in_segment = [&](double cumulative, double lo, double hi,
                              int64_t n) {
    const double fraction =
        n > 0 ? (target - cumulative) / static_cast<double>(n) : 0.0;
    return lo + fraction * (hi - lo);
  };
  double cumulative = 0.0;
  double result = histogram.max;
  bool found = false;
  if (histogram.underflow > 0) {
    const double hi = std::min(histogram.bounds.front(), histogram.max);
    if (cumulative + static_cast<double>(histogram.underflow) >= target) {
      result = in_segment(cumulative, histogram.min, hi,
                          histogram.underflow);
      found = true;
    }
    cumulative += static_cast<double>(histogram.underflow);
  }
  for (size_t i = 0; !found && i < histogram.buckets.size(); ++i) {
    const int64_t n = histogram.buckets[i];
    if (n <= 0) continue;
    if (cumulative + static_cast<double>(n) >= target) {
      result = in_segment(cumulative, histogram.bounds[i],
                          histogram.bounds[i + 1], n);
      found = true;
      break;
    }
    cumulative += static_cast<double>(n);
  }
  if (!found && histogram.overflow > 0) {
    result = in_segment(cumulative, histogram.bounds.back(), histogram.max,
                        histogram.overflow);
  }
  // Interpolation can step just outside the observed range at the
  // extremes (q ~ 0 inside the first populated bucket); the estimate is
  // never allowed to leave [min, max].
  return std::min(std::max(result, histogram.min), histogram.max);
}

MetricsRegistry& Registry() {
  // Leaked on purpose: pool workers and the obs flusher may record during
  // static teardown, so the registry must outlive every other static.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":[";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSnapshot& c = snapshot.counters[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + c.name +
           "\",\"value\":" + std::to_string(c.value) + "}";
  }
  out += "],\"gauges\":[";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSnapshot& g = snapshot.gauges[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + g.name + "\",\"value\":" + JsonNumber(g.value) +
           "}";
  }
  out += "],\"histograms\":[";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"" + h.name +
           "\",\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + JsonNumber(h.sum) +
           ",\"min\":" + JsonNumber(h.min) +
           ",\"max\":" + JsonNumber(h.max) +
           ",\"underflow\":" + std::to_string(h.underflow) +
           ",\"overflow\":" + std::to_string(h.overflow) +
           ",\"p50\":" + JsonNumber(HistogramQuantile(h, 0.50)) +
           ",\"p90\":" + JsonNumber(HistogramQuantile(h, 0.90)) +
           ",\"p99\":" + JsonNumber(HistogramQuantile(h, 0.99)) +
           ",\"bounds\":[";
    for (size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) out += ',';
      out += JsonNumber(h.bounds[j]);
    }
    out += "],\"buckets\":[";
    for (size_t j = 0; j < h.buckets.size(); ++j) {
      if (j > 0) out += ',';
      out += std::to_string(h.buckets[j]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string MetricsToCsv(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "kind,name,value,count,sum,min,max,underflow,overflow,bounds,"
         "buckets,p50,p90,p99\n";
  for (const CounterSnapshot& c : snapshot.counters) {
    out << "counter," << c.name << ',' << c.value << ",,,,,,,,,,,\n";
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    out << "gauge," << g.name << ',' << JsonNumber(g.value)
        << ",,,,,,,,,,,\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    out << "histogram," << h.name << ",," << h.count << ','
        << JsonNumber(h.sum) << ',' << JsonNumber(h.min) << ','
        << JsonNumber(h.max) << ',' << h.underflow << ',' << h.overflow
        << ',' << JoinDoubles(h.bounds) << ',' << JoinInts(h.buckets)
        << ',' << JsonNumber(HistogramQuantile(h, 0.50)) << ','
        << JsonNumber(HistogramQuantile(h, 0.90)) << ','
        << JsonNumber(HistogramQuantile(h, 0.99)) << '\n';
  }
  return out.str();
}

bool WriteMetricsFile(const std::string& path,
                      const MetricsSnapshot& snapshot, std::string* error) {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string body =
      csv ? MetricsToCsv(snapshot) : MetricsToJson(snapshot);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << body) || !out.flush()) {
      if (error != nullptr) *error = "cannot write " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace imsr::obs
