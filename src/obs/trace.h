// Scoped trace spans (imsr::obs pillar 2): IMSR_TRACE_SPAN("routing")
// records a begin/duration pair against a process-wide monotonic clock
// into a per-thread buffer; ExportChromeTrace() renders every recorded
// span as Chrome trace-event JSON ("X" complete events), loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Collection is off by default: a disabled ScopedSpan reads one relaxed
// atomic and touches nothing else — no clock read, no allocation, no
// thread-buffer registration. Enable with EnableTracing(true) (the CLI
// does this when --trace_out= is set). Span names must be string literals
// (or otherwise outlive the recorder): only the pointer is stored.
#ifndef IMSR_OBS_TRACE_H_
#define IMSR_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace imsr::obs {

struct TraceEvent {
  const char* name = nullptr;
  int64_t start_ns = 0;  // since the process trace epoch (monotonic)
  int64_t duration_ns = 0;
  int tid = 0;  // dense per-thread id in registration order
};

// Nanoseconds on the monotonic trace clock (steady_clock anchored at the
// first call, so timestamps start near zero).
int64_t TraceNowNs();

bool TracingEnabled();
void EnableTracing(bool enabled);

// Appends one completed span to the calling thread's buffer (no-op when
// tracing is disabled). Buffers are capped; spans beyond the cap are
// counted in TraceDroppedCount() instead of recorded.
void RecordTraceSpan(const char* name, int64_t start_ns,
                     int64_t duration_ns);

// Total recorded events / registered thread buffers / dropped events.
size_t TraceEventCount();
size_t TraceThreadCount();
int64_t TraceDroppedCount();

// Drops every recorded event (thread registrations persist — a live
// thread's buffer cannot be torn down from another thread).
void ClearTrace();

// All recorded events, Chrome trace-event JSON: {"traceEvents":[...]}.
// Events are sorted by (tid, start) so the export is deterministic for a
// deterministic run.
std::string ExportChromeTrace();

// Writes ExportChromeTrace() to `path` atomically (tmp + rename).
bool WriteChromeTrace(const std::string& path, std::string* error);

// RAII span: times its scope when tracing is enabled at construction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(TracingEnabled() ? name : nullptr),
        start_ns_(name_ != nullptr ? TraceNowNs() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (name_ != nullptr) {
      RecordTraceSpan(name_, start_ns_, TraceNowNs() - start_ns_);
    }
  }

 private:
  const char* name_;
  int64_t start_ns_;
};

}  // namespace imsr::obs

#endif  // IMSR_OBS_TRACE_H_
