// Existing-interests retainer (§IV-B): a knowledge-distillation loss that
// pins the matching scores of inherited interests to the scores produced
// by the previous span's interest vectors (Eq. 10). Includes the ablation
// variants of §V-C: DIR (Euclidean regularisation) and three softmax-based
// distillation losses (KD1/KD2/KD3).
#ifndef IMSR_CORE_EIR_H_
#define IMSR_CORE_EIR_H_

#include <string>

#include "nn/variable.h"

namespace imsr::core {

enum class RetentionKind {
  kNone,        // plain fine-tuning
  kSigmoidKd,   // EIR — Eq. 10 with the sigmoid form of [Wang et al. 2020]
  kEuclidean,   // DIR — distance-based regularisation ablation
  kSoftmaxKd1,  // LwF-style softmax KD, tau = 2
  kSoftmaxKd2,  // cosine-normalised softmax KD, tau = 1
  kSoftmaxKd3,  // low-temperature softmax KD, tau = 0.5
};

const char* RetentionKindName(RetentionKind kind);
RetentionKind RetentionKindFromName(const std::string& name);

struct EirConfig {
  RetentionKind kind = RetentionKind::kSigmoidKd;
  float tau = 1.0f;         // temperature for the sigmoid form
  float coefficient = 0.1f; // weight of the retention term in the loss
};

// Builds the retention loss for one training sample. `student_interests`
// (K_t x d Var) are the live interests whose first `teacher.size(0)` rows
// correspond to the existing interests; `teacher_interests` (K_{t-1} x d)
// are the previous span's stored vectors (constants); `candidates`
// ((1+N) x d Var) stacks the sample's target and sampled negatives — the
// distillation anchors the matching scores of every existing interest
// against the whole candidate set, so negative sampling cannot silently
// demote items of dormant interests. `teacher_candidates` are the same
// candidate rows gathered from the *previous span's* embedding table: the
// teacher is the whole model M^{t-1} (interests and embeddings), so its
// scores stay fixed while the student drifts. Returns an *unweighted*
// scalar loss (the caller applies EirConfig::coefficient); undefined Var
// when kind == kNone.
nn::Var RetentionLoss(const EirConfig& config,
                      const nn::Var& student_interests,
                      const nn::Tensor& teacher_interests,
                      const nn::Var& candidates,
                      const nn::Tensor& teacher_candidates);

}  // namespace imsr::core

#endif  // IMSR_CORE_EIR_H_
