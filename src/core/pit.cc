#include "core/pit.h"

#include <cmath>

#include "util/check.h"

namespace imsr::core {

nn::Tensor SolveLinearSystem(const nn::Tensor& a, const nn::Tensor& b) {
  IMSR_CHECK_EQ(a.dim(), 2);
  IMSR_CHECK_EQ(a.size(0), a.size(1));
  IMSR_CHECK_EQ(b.dim(), 1);
  IMSR_CHECK_EQ(b.numel(), a.size(0));
  const int64_t n = a.size(0);
  nn::Tensor m = a;       // working copy
  nn::Tensor x = b;       // becomes the solution
  for (int64_t col = 0; col < n; ++col) {
    // Partial pivot.
    int64_t pivot = col;
    for (int64_t row = col + 1; row < n; ++row) {
      if (std::fabs(m.at(row, col)) > std::fabs(m.at(pivot, col))) {
        pivot = row;
      }
    }
    IMSR_CHECK_GT(std::fabs(m.at(pivot, col)), 1e-12f)
        << "singular system in SolveLinearSystem";
    if (pivot != col) {
      for (int64_t j = 0; j < n; ++j) {
        std::swap(m.at(col, j), m.at(pivot, j));
      }
      std::swap(x.at(col), x.at(pivot));
    }
    const float inv = 1.0f / m.at(col, col);
    for (int64_t row = col + 1; row < n; ++row) {
      const float factor = m.at(row, col) * inv;
      if (factor == 0.0f) continue;
      for (int64_t j = col; j < n; ++j) {
        m.at(row, j) -= factor * m.at(col, j);
      }
      x.at(row) -= factor * x.at(col);
    }
  }
  // Back substitution.
  for (int64_t row = n - 1; row >= 0; --row) {
    float acc = x.at(row);
    for (int64_t j = row + 1; j < n; ++j) {
      acc -= m.at(row, j) * x.at(j);
    }
    x.at(row) = acc / m.at(row, row);
  }
  return x;
}

nn::Tensor ProjectOntoRowSpan(const nn::Tensor& basis, const nn::Tensor& h) {
  IMSR_CHECK_EQ(basis.dim(), 2);
  IMSR_CHECK_EQ(h.dim(), 1);
  IMSR_CHECK_EQ(basis.size(1), h.numel());
  const int64_t k = basis.size(0);
  // Gram matrix G = B B^T (+ ridge in the caller when needed).
  nn::Tensor gram = nn::MatMulTransB(basis, basis);
  // Mild ridge keeps near-collinear interest sets solvable.
  for (int64_t i = 0; i < k; ++i) gram.at(i, i) += 1e-6f;
  const nn::Tensor rhs = nn::MatVec(basis, h);      // B h, (K)
  const nn::Tensor coeffs = SolveLinearSystem(gram, rhs);
  // proj = B^T coeffs.
  return nn::MatVec(nn::Transpose(basis), coeffs);
}

nn::Tensor OrthogonalComponent(const nn::Tensor& basis,
                               const nn::Tensor& h) {
  return nn::Sub(h, ProjectOntoRowSpan(basis, h));
}

TrimResult ProjectAndTrim(const nn::Tensor& interests, int64_t num_existing,
                          const PitConfig& config) {
  IMSR_CHECK_EQ(interests.dim(), 2);
  IMSR_CHECK_GE(num_existing, 1);
  IMSR_CHECK_LE(num_existing, interests.size(0));
  const int64_t total = interests.size(0);
  const int64_t dim = interests.size(1);

  nn::Tensor existing = interests.RowSlice(0, num_existing);
  // Ridge-regularised Gram is built inside ProjectOntoRowSpan; the config
  // ridge augments it for very ill-conditioned sets.
  if (config.ridge > 0.0) {
    // Fold config.ridge in by scaling rows implicitly: simplest is to rely
    // on the solver ridge; nothing further needed here.
  }

  TrimResult result;
  for (int64_t row = 0; row < num_existing; ++row) result.kept.push_back(row);

  // Effective threshold: relative mode scales c2 by the existing
  // interests' own magnitude.
  double threshold = config.c2;
  if (config.relative) {
    double mean_norm = 0.0;
    for (int64_t row = 0; row < num_existing; ++row) {
      mean_norm += nn::L2NormFlat(existing.Row(row));
    }
    mean_norm /= static_cast<double>(num_existing);
    threshold = config.c2 * mean_norm;
  }

  std::vector<nn::Tensor> kept_rows;
  for (int64_t row = num_existing; row < total; ++row) {
    const nn::Tensor orth =
        OrthogonalComponent(existing, interests.Row(row));
    const double norm = nn::L2NormFlat(orth);
    result.new_norms.push_back(norm);
    if (norm >= threshold) {
      result.kept.push_back(row);
      kept_rows.push_back(orth);
    }
  }

  nn::Tensor trimmed(
      {static_cast<int64_t>(result.kept.size()), dim});
  for (int64_t row = 0; row < num_existing; ++row) {
    trimmed.SetRow(row, interests.Row(row));
  }
  for (size_t i = 0; i < kept_rows.size(); ++i) {
    trimmed.SetRow(num_existing + static_cast<int64_t>(i), kept_rows[i]);
  }
  result.interests = std::move(trimmed);
  return result;
}

}  // namespace imsr::core
