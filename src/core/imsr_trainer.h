// The IMSR training engine (Algorithm 2): pretraining, per-span
// incremental training with interests expansion (Alg. 1) and the
// retention loss (Eq. 10), and interest refreshing. Also serves as the
// shared inner loop for the FT/FR/SML/ADER strategies, which configure
// away the IMSR-specific parts.
#ifndef IMSR_CORE_IMSR_TRAINER_H_
#define IMSR_CORE_IMSR_TRAINER_H_

#include <unordered_map>
#include <vector>

#include "core/eir.h"
#include "core/interest_store.h"
#include "core/interests_expansion.h"
#include "data/sampler.h"
#include "models/msr_model.h"
#include "nn/arena.h"
#include "nn/optim.h"

namespace imsr::serve {
class SnapshotRegistry;
}  // namespace imsr::serve

namespace imsr::core {

struct TrainConfig {
  int pretrain_epochs = 5;
  int epochs = 3;  // r in Algorithm 2
  int batch_size = 64;
  float learning_rate = 0.005f;
  int negatives = 10;     // |I'| in Eq. 6
  int max_history = 50;   // n cap on input sequences
  int initial_interests = 4;  // K^0

  // IMSR's interest-persistence rule (§IV-B: existing interests are
  // preserved and only *adjusted* by items that belong to them). When
  // true, the per-span re-extraction seeds routing from the stored
  // interest vectors and an existing interest is only overwritten when at
  // least `min_evidence_items` of the span's items are assigned to it
  // (cosine argmax) — extractor-agnostic evidence that the span actually
  // expressed that interest. When false — the FT/FR/SML/ADER baselines —
  // interests are re-extracted from the current span's items alone, so
  // interests the user did not express this span are structurally
  // forgotten (the paper's §III failure mode).
  bool persist_interests = true;
  int min_evidence_items = 1;  // 0 disables gating

  // Early stopping on the span's validation items (paper §IV-F): epochs
  // end once the validation loss fails to improve `patience` times.
  bool early_stopping = false;
  int early_stopping_patience = 2;

  // Minibatched training path: per optimizer step, one fused
  // sampled-softmax node over a (B*C x d) candidate gather instead of B
  // per-sample loss graphs. At batch_size == 1 it is bitwise identical
  // to the per-sample path (see SampledSoftmaxBatchLoss); false restores
  // the per-sample reference loop.
  bool batched = true;

  EirConfig eir;              // set kind = kNone for plain fine-tuning
  ExpansionConfig expansion;  // NID + PIT parameters
  bool enable_expansion = true;
  // Algorithm 2 re-runs IntsEx every epoch; once per span is the cheaper
  // default (later runs are no-ops once puzzlement is absorbed).
  bool expansion_every_epoch = false;

  uint64_t seed = 1;
};

// Teacher snapshot for the retention loss: the relevant state of the
// previous span's model M^{t-1} — per-user interest vectors plus the
// embedding table as of the span start, so teacher scores stay fixed
// while the student drifts.
struct TeacherSnapshot {
  std::unordered_map<data::UserId, nn::Tensor> interests;
  nn::Tensor embeddings;  // (num_items x d) copy
};

class ImsrTrainer {
 public:
  ImsrTrainer(models::MsrModel* model, InterestStore* store,
              const TrainConfig& config);

  ImsrTrainer(const ImsrTrainer&) = delete;
  ImsrTrainer& operator=(const ImsrTrainer&) = delete;

  // Pretraining (Algorithm 2 lines 1-7): initialises K^0 interests per
  // user active in span 0 and trains the base model.
  void Pretrain(const data::Dataset& dataset);

  // One incremental span (Algorithm 2's Training procedure). Optional
  // `extra_samples` join the span's own samples (exemplar replay).
  void TrainSpan(const data::Dataset& dataset, int span,
                 const std::vector<data::TrainingSample>* extra_samples =
                     nullptr);

  // One supervised epoch over `samples`; `teacher` (nullable) enables the
  // retention loss for users it covers. Returns the mean per-sample
  // training loss over the epoch (0 when `samples` is empty).
  double TrainEpoch(const std::vector<data::TrainingSample>& samples,
                    const TeacherSnapshot* teacher);

  // Creates store entries (K^0 random interests) and per-user extractor
  // capacity for every user active in `span` that lacks them.
  void EnsureUserState(const data::Dataset& dataset, int span);

  // Recomputes and stores H_u from the user's span-`span` interactions.
  void RefreshInterests(const data::Dataset& dataset, int span);

  // Recomputes one user's interests from an explicit item list (used by
  // replay-based strategies whose effective span data includes exemplars).
  void RefreshUserInterests(data::UserId user,
                            std::vector<data::ItemId> items);

  // Snapshot of the stored interests of every user active in `span`.
  TeacherSnapshot SnapshotTeacher(const data::Dataset& dataset,
                                  int span) const;

  // Mean sampled-softmax loss on the span's (train-sequence -> validation
  // item) instances; drives early stopping and is useful for monitoring.
  double ValidationLoss(const data::Dataset& dataset, int span);

  // Builds the training-loss graph for a single sample (exposed for
  // tests). `teacher` may be null.
  nn::Var SampleLoss(const data::TrainingSample& sample,
                     const TeacherSnapshot* teacher);

  // Builds the summed (not yet averaged) loss graph for the minibatch
  // `samples[indices[0..count)]` on the batched path: one batched target
  // gather, one flat (count * (1+negatives) x d) candidate gather and
  // one fused sampled-softmax node. Draws the same RNG sequence as
  // `count` consecutive SampleLoss calls. Exposed for tests; `teacher`
  // may be null.
  nn::Var BatchLoss(const std::vector<data::TrainingSample>& samples,
                    const size_t* indices, size_t count,
                    const TeacherSnapshot* teacher);

  nn::Adam& optimizer() { return optimizer_; }
  InterestStore& store() { return *store_; }
  models::MsrModel& model() { return *model_; }
  const TrainConfig& config() const { return config_; }

  // Cumulative outcome of all expansion runs (diagnostics).
  const ExpansionOutcome& expansion_totals() const {
    return expansion_totals_;
  }

  // Attaches a serving registry (not owned, may be null). When set, a
  // fresh ServingSnapshot is built and published after Pretrain and after
  // every TrainSpan — the publish points of Algorithm 2's train-then-serve
  // loop — so readers always serve the last completed span. (See
  // serve/registry.h for the swap's memory model.)
  void set_snapshot_registry(serve::SnapshotRegistry* registry) {
    registry_ = registry;
  }

 private:
  // Publishes the current model/store state as span `span` when a
  // registry is attached.
  void MaybePublishSnapshot(int span);

  // Reusable buffers for the steady-state training step. Capacities grow
  // to the high-water mark once and are then recycled, so SampleLoss and
  // TrainEpoch allocate nothing per step.
  struct TrainScratch {
    std::vector<data::ItemId> candidates;
    std::vector<size_t> order;
    std::vector<int64_t> candidate_indices;
    // Batched-path buffers: per-batch targets, the flat candidate list
    // (target first per sample block) and the per-sample interest /
    // representation graph handles. The Var vectors are cleared before
    // BatchLoss returns so they never outlive the step's arena graph.
    std::vector<data::ItemId> batch_targets;
    std::vector<data::ItemId> flat_candidates;
    std::vector<nn::Var> interests;
    std::vector<nn::Var> reprs;
    // Concatenated-history buffers for the batched interest forward:
    // sample b's history occupies flat_history rows [history_offsets[b],
    // history_offsets[b+1]). The interest-init pointers borrow from the
    // InterestStore, which is not mutated while a batch is in flight.
    std::vector<data::ItemId> flat_history;
    std::vector<int64_t> history_offsets;
    std::vector<const nn::Tensor*> interest_inits;
    std::vector<data::UserId> batch_users;
  };

  models::MsrModel* model_;
  InterestStore* store_;
  TrainConfig config_;
  nn::Adam optimizer_;
  util::Rng rng_;
  data::NegativeSampler negative_sampler_;
  ExpansionOutcome expansion_totals_;
  serve::SnapshotRegistry* registry_ = nullptr;  // not owned
  nn::GraphArena arena_;  // backs autograd nodes built by TrainEpoch
  TrainScratch scratch_;
};

}  // namespace imsr::core

#endif  // IMSR_CORE_IMSR_TRAINER_H_
