#include "core/experiment.h"

#include "util/logging.h"
#include "util/stopwatch.h"

namespace imsr::core {
namespace {

SpanMetrics EvaluateAfterSpan(const models::MsrModel& model,
                              const InterestStore& store,
                              const data::Dataset& dataset,
                              int trained_through_span,
                              const eval::EvalConfig& eval_config) {
  SpanMetrics metrics;
  metrics.trained_through_span = trained_through_span;
  metrics.test_span = trained_through_span + 1;
  const eval::EvalResult result = eval::EvaluateSpan(
      model.embeddings().parameter().value(), store, dataset,
      metrics.test_span, eval_config);
  metrics.hit_ratio = result.metrics.hit_ratio;
  metrics.ndcg = result.metrics.ndcg;
  metrics.evaluated_users = result.metrics.users;
  metrics.infer_ms_per_user =
      result.metrics.users > 0
          ? result.total_seconds * 1e3 /
                static_cast<double>(result.metrics.users)
          : 0.0;
  metrics.avg_interests = store.AverageInterests();
  return metrics;
}

}  // namespace

ExperimentResult RunExperiment(const data::Dataset& dataset,
                               const ExperimentConfig& config) {
  models::MsrModel model(config.model, dataset.num_items(), config.seed);
  InterestStore store;

  StrategyConfig strategy_config = config.strategy;
  strategy_config.train.seed = config.seed;
  std::unique_ptr<LearningStrategy> strategy =
      LearningStrategy::Create(strategy_config, &model, &store);

  ExperimentResult result;
  util::Stopwatch stopwatch;

  // Pretraining, evaluated on span 1 (reported but excluded from averages).
  stopwatch.Restart();
  strategy->Pretrain(dataset);
  SpanMetrics pretrain_metrics = EvaluateAfterSpan(
      model, store, dataset, /*trained_through_span=*/0, config.eval);
  pretrain_metrics.train_seconds = stopwatch.ElapsedSeconds();
  result.spans.push_back(pretrain_metrics);

  // Incremental spans 1..T-1, each tested on the following span.
  const int last_trained_span = dataset.num_incremental_spans() - 1;
  double hr_total = 0.0;
  double ndcg_total = 0.0;
  for (int span = 1; span <= last_trained_span; ++span) {
    stopwatch.Restart();
    strategy->TrainIncrementalSpan(dataset, span);
    const double train_seconds = stopwatch.ElapsedSeconds();
    SpanMetrics metrics =
        EvaluateAfterSpan(model, store, dataset, span, config.eval);
    metrics.train_seconds = train_seconds;
    result.spans.push_back(metrics);
    hr_total += metrics.hit_ratio;
    ndcg_total += metrics.ndcg;
  }
  if (last_trained_span >= 1) {
    result.avg_hit_ratio = hr_total / last_trained_span;
    result.avg_ndcg = ndcg_total / last_trained_span;
  }

  // Expansion diagnostics, when the strategy is IMSR-family.
  if (auto* ft = dynamic_cast<FineTuneFamilyStrategy*>(strategy.get())) {
    result.expansion = ft->trainer().expansion_totals();
  }
  return result;
}

ExperimentResult RunRepeatedExperiment(const data::Dataset& dataset,
                                       const ExperimentConfig& config,
                                       int repeats) {
  IMSR_CHECK_GE(repeats, 1);
  ExperimentResult aggregate;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    ExperimentConfig run = config;
    run.seed = config.seed + static_cast<uint64_t>(repeat) * 104729ULL;
    ExperimentResult result = RunExperiment(dataset, run);
    if (repeat == 0) {
      aggregate = result;
    } else {
      IMSR_CHECK_EQ(aggregate.spans.size(), result.spans.size());
      for (size_t i = 0; i < result.spans.size(); ++i) {
        aggregate.spans[i].hit_ratio += result.spans[i].hit_ratio;
        aggregate.spans[i].ndcg += result.spans[i].ndcg;
        aggregate.spans[i].train_seconds += result.spans[i].train_seconds;
        aggregate.spans[i].infer_ms_per_user +=
            result.spans[i].infer_ms_per_user;
        aggregate.spans[i].avg_interests += result.spans[i].avg_interests;
      }
      aggregate.avg_hit_ratio += result.avg_hit_ratio;
      aggregate.avg_ndcg += result.avg_ndcg;
    }
  }
  const double inv = 1.0 / static_cast<double>(repeats);
  for (SpanMetrics& metrics : aggregate.spans) {
    metrics.hit_ratio *= inv;
    metrics.ndcg *= inv;
    metrics.train_seconds *= inv;
    metrics.infer_ms_per_user *= inv;
    metrics.avg_interests *= inv;
  }
  aggregate.avg_hit_ratio *= inv;
  aggregate.avg_ndcg *= inv;
  return aggregate;
}

RepeatedScores CollectRepeatedScores(const data::Dataset& dataset,
                                     const ExperimentConfig& config,
                                     int repeats) {
  RepeatedScores scores;
  for (int repeat = 0; repeat < repeats; ++repeat) {
    ExperimentConfig run = config;
    run.seed = config.seed + static_cast<uint64_t>(repeat) * 104729ULL;
    const ExperimentResult result = RunExperiment(dataset, run);
    scores.hit_ratios.push_back(result.avg_hit_ratio);
    scores.ndcgs.push_back(result.avg_ndcg);
  }
  return scores;
}

}  // namespace imsr::core
