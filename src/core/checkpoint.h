// Full-state checkpointing for the incremental pipeline: one file holds
// the model parameters, the per-user interest store and bookkeeping, so a
// deployment can stop after span t and resume at span t+1 — the paper's
// premise that historical interactions can be discarded (§IV-E) requires
// exactly this state to persist.
#ifndef IMSR_CORE_CHECKPOINT_H_
#define IMSR_CORE_CHECKPOINT_H_

#include <string>

#include "core/interest_store.h"
#include "models/msr_model.h"

namespace imsr::core {

struct CheckpointMetadata {
  int64_t trained_through_span = 0;
  std::string note;
};

// Serialises (model, store, metadata) to `path`. Returns false on I/O
// failure.
bool SaveCheckpoint(const std::string& path, const models::MsrModel& model,
                    const InterestStore& store,
                    const CheckpointMetadata& metadata);

// Restores a checkpoint into an existing model of the same configuration.
// Returns false on I/O failure or format mismatch; `error` (optional)
// receives a description.
bool LoadCheckpoint(const std::string& path, models::MsrModel* model,
                    InterestStore* store, CheckpointMetadata* metadata,
                    std::string* error = nullptr);

}  // namespace imsr::core

#endif  // IMSR_CORE_CHECKPOINT_H_
