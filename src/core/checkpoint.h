// Full-state checkpointing for the incremental pipeline: one file holds
// the model parameters, the per-user interest store and bookkeeping, so a
// deployment can stop after span t and resume at span t+1 — the paper's
// premise that historical interactions can be discarded (§IV-E) requires
// exactly this state to persist.
//
// On-disk format (imsr-checkpoint-v2):
//   magic string | int64 payload_size | payload | int64 crc32(payload)
// where the payload is a sequence of framed sections
//   tag string | int64 body_size | body
// ("meta" carries span/note plus the model shape, "model" and "store" the
// component state; unknown tags are skipped for forward compatibility).
// Saves are atomic-durable (write to path+".tmp", fsync, rename), and
// loads are all-or-nothing: any truncation, bit-flip (CRC mismatch) or
// shape mismatch returns false with a descriptive error and leaves the
// destination model/store untouched. v1 checkpoints remain loadable.
#ifndef IMSR_CORE_CHECKPOINT_H_
#define IMSR_CORE_CHECKPOINT_H_

#include <string>

#include "core/interest_store.h"
#include "models/msr_model.h"

namespace imsr::core {

struct CheckpointMetadata {
  int64_t trained_through_span = 0;
  std::string note;
};

// Serialises (model, store, metadata) to `path` via an atomic durable
// replace. Returns false on I/O failure; `error` (optional) receives a
// description.
bool SaveCheckpoint(const std::string& path, const models::MsrModel& model,
                    const InterestStore& store,
                    const CheckpointMetadata& metadata,
                    std::string* error = nullptr);

// Restores a checkpoint into an existing model of the same configuration.
// Returns false on I/O failure, corruption (truncation, checksum
// mismatch) or format/shape mismatch; `error` (optional) receives a
// description. On failure the destination model and store are unchanged.
bool LoadCheckpoint(const std::string& path, models::MsrModel* model,
                    InterestStore* store, CheckpointMetadata* metadata,
                    std::string* error = nullptr);

// Shifts `path` -> `path.1` -> ... -> `path.<keep>`, dropping the oldest,
// so the previous checkpoint generation survives a failed save of the next
// one. No-op when `keep` <= 0 or `path` does not exist. Call before
// SaveCheckpoint when rotation is wanted (CLI: --keep_checkpoints=N).
void RotateCheckpoints(const std::string& path, int keep);

}  // namespace imsr::core

#endif  // IMSR_CORE_CHECKPOINT_H_
