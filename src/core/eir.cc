#include "core/eir.h"

#include <cmath>

#include "nn/ops.h"
#include "util/check.h"

namespace imsr::core {
namespace {

// Teacher logit matrix f(h_k^{t-1}, e_c): (K_prev x m) dot products of the
// (constant) previous-span interests against the candidate snapshot.
nn::Tensor TeacherLogits(const nn::Tensor& teacher_interests,
                         const nn::Tensor& candidates) {
  return nn::MatMulTransB(teacher_interests, candidates);
}

// Cosine-normalised teacher logits (KD2 variant).
nn::Tensor CosineTeacherLogits(const nn::Tensor& teacher_interests,
                               const nn::Tensor& candidates) {
  nn::Tensor logits = TeacherLogits(teacher_interests, candidates);
  for (int64_t k = 0; k < logits.size(0); ++k) {
    const float row_norm = nn::L2NormFlat(teacher_interests.Row(k));
    for (int64_t c = 0; c < logits.size(1); ++c) {
      const float cand_norm = nn::L2NormFlat(candidates.Row(c));
      const float denom = row_norm * cand_norm;
      logits.at(k, c) = denom > 1e-12f ? logits.at(k, c) / denom : 0.0f;
    }
  }
  return logits;
}

nn::Tensor SigmoidWithTau(const nn::Tensor& logits, float tau) {
  nn::Tensor probs(logits.shape());
  for (int64_t i = 0; i < logits.numel(); ++i) {
    probs.data()[i] = 1.0f / (1.0f + std::exp(-logits.data()[i] / tau));
  }
  return probs;
}

// Softmax over interests (rows) for each candidate column.
nn::Tensor ColumnSoftmaxWithTau(const nn::Tensor& logits, float tau) {
  return nn::Transpose(
      nn::Softmax(nn::Scale(nn::Transpose(logits), 1.0f / tau)));
}

// Sum over candidates of the per-candidate softmax KD between the student
// logit columns and the precomputed teacher column distributions.
nn::Var ColumnwiseSoftmaxKd(const nn::Var& student_logits,
                            const nn::Tensor& teacher_probs, float tau) {
  const int64_t k = teacher_probs.size(0);
  const int64_t m = teacher_probs.size(1);
  nn::Var student_t = nn::ops::Transpose(student_logits);  // (m x K)
  nn::Var total;
  for (int64_t c = 0; c < m; ++c) {
    nn::Tensor teacher_col({k});
    for (int64_t row = 0; row < k; ++row) {
      teacher_col.at(row) = teacher_probs.at(row, c);
    }
    nn::Var term = nn::ops::KdSoftmaxCrossEntropy(
        nn::ops::RowVector(student_t, c), teacher_col, tau);
    total = total.defined() ? nn::ops::Add(total, term) : term;
  }
  return total;
}

}  // namespace

const char* RetentionKindName(RetentionKind kind) {
  switch (kind) {
    case RetentionKind::kNone:
      return "none";
    case RetentionKind::kSigmoidKd:
      return "EIR";
    case RetentionKind::kEuclidean:
      return "DIR";
    case RetentionKind::kSoftmaxKd1:
      return "KD1";
    case RetentionKind::kSoftmaxKd2:
      return "KD2";
    case RetentionKind::kSoftmaxKd3:
      return "KD3";
  }
  return "?";
}

RetentionKind RetentionKindFromName(const std::string& name) {
  if (name == "none") return RetentionKind::kNone;
  if (name == "EIR" || name == "eir") return RetentionKind::kSigmoidKd;
  if (name == "DIR" || name == "dir") return RetentionKind::kEuclidean;
  if (name == "KD1" || name == "kd1") return RetentionKind::kSoftmaxKd1;
  if (name == "KD2" || name == "kd2") return RetentionKind::kSoftmaxKd2;
  if (name == "KD3" || name == "kd3") return RetentionKind::kSoftmaxKd3;
  IMSR_CHECK(false) << "unknown retention kind '" << name << "'";
  std::abort();
}

nn::Var RetentionLoss(const EirConfig& config,
                      const nn::Var& student_interests,
                      const nn::Tensor& teacher_interests,
                      const nn::Var& candidates,
                      const nn::Tensor& teacher_candidates) {
  if (config.kind == RetentionKind::kNone) return nn::Var();
  const int64_t k_prev = teacher_interests.size(0);
  IMSR_CHECK_GE(student_interests.value().size(0), k_prev)
      << "student must keep every existing interest row";
  IMSR_CHECK_GT(k_prev, 0);

  // The student rows aligned with the teacher's interests.
  nn::Var student_existing =
      nn::ops::RowSlice(student_interests, 0, k_prev);

  if (config.kind == RetentionKind::kEuclidean) {
    // DIR: sum_k || h_k^t - h_k^{t-1} ||^2 — no candidate involvement.
    const nn::Var teacher_const(teacher_interests);
    return nn::ops::SumSquares(
        nn::ops::Sub(student_existing, teacher_const));
  }

  const int64_t m = candidates.value().size(0);
  // Student logit matrix f(h_k^t, e_c): (K_prev x m).
  nn::Var student_logits = nn::ops::MatMul(
      student_existing, nn::ops::Transpose(candidates));

  switch (config.kind) {
    case RetentionKind::kSigmoidKd: {
      const nn::Tensor teacher_probs = SigmoidWithTau(
          TeacherLogits(teacher_interests, teacher_candidates),
          config.tau);
      return nn::ops::KdSigmoidCrossEntropy(
          nn::ops::Reshape(student_logits, {k_prev * m}),
          teacher_probs.Reshape({k_prev * m}), config.tau);
    }
    case RetentionKind::kSoftmaxKd1: {
      const float tau = 2.0f;
      return ColumnwiseSoftmaxKd(
          student_logits,
          ColumnSoftmaxWithTau(
              TeacherLogits(teacher_interests, teacher_candidates), tau),
          tau);
    }
    case RetentionKind::kSoftmaxKd2: {
      const float tau = 1.0f;
      return ColumnwiseSoftmaxKd(
          student_logits,
          ColumnSoftmaxWithTau(
              CosineTeacherLogits(teacher_interests, teacher_candidates),
              tau),
          tau);
    }
    case RetentionKind::kSoftmaxKd3: {
      const float tau = 0.5f;
      return ColumnwiseSoftmaxKd(
          student_logits,
          ColumnSoftmaxWithTau(
              TeacherLogits(teacher_interests, teacher_candidates), tau),
          tau);
    }
    default:
      break;
  }
  IMSR_CHECK(false) << "unreachable retention kind";
  std::abort();
}

}  // namespace imsr::core
