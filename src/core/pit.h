// Projection-based interests trimmer (§IV-D): newly created interest
// vectors keep only their component orthogonal to the span of the existing
// interest vectors (Eq. 16), and new vectors whose remaining L2 norm falls
// below c2 are deleted (Eq. 17).
#ifndef IMSR_CORE_PIT_H_
#define IMSR_CORE_PIT_H_

#include <vector>

#include "nn/tensor.h"

namespace imsr::core {

struct PitConfig {
  // Eq. 17's trivial-interest threshold on the orthogonal-component norm.
  // Interpreted *relative* to the mean L2 norm of the user's existing
  // interest vectors when `relative` is true (default): squashed capsule
  // interests (DR) and attention-combination interests (SA) live at very
  // different scales, and a relative threshold makes the published c2
  // range transfer across extractors (see DESIGN.md §1).
  double c2 = 0.3;
  bool relative = true;
  // Ridge added to the Gram matrix before inversion — existing interests
  // can be nearly collinear.
  double ridge = 1e-4;
};

// Projection of vector `h` (d) onto the row span of `basis` (K x d):
// basis^T (basis basis^T)^-1 basis h, via a ridge-regularised K x K solve.
nn::Tensor ProjectOntoRowSpan(const nn::Tensor& basis, const nn::Tensor& h);

// h minus its projection — the part of a new interest not expressible as a
// combination of existing interests.
nn::Tensor OrthogonalComponent(const nn::Tensor& basis, const nn::Tensor& h);

struct TrimResult {
  // Indices (into the full interest matrix) of all kept rows: the existing
  // rows 0..num_existing-1 plus the surviving new rows, ascending.
  std::vector<int64_t> kept;
  // Interest matrix after projection and trimming: existing rows unchanged,
  // surviving new rows replaced by their orthogonal components.
  nn::Tensor interests;
  // Orthogonal-component norm of every candidate new row (diagnostics,
  // Fig. 3).
  std::vector<double> new_norms;
};

// Applies Eq. 16 + Eq. 17 to `interests` (K_total x d) whose first
// `num_existing` rows are the user's existing interests and remaining rows
// the freshly learned candidates. `num_existing` must be >= 1.
TrimResult ProjectAndTrim(const nn::Tensor& interests, int64_t num_existing,
                          const PitConfig& config);

// Solves the dense symmetric positive-definite system A x = b via
// Gaussian elimination with partial pivoting (K is small). Exposed for
// testing.
nn::Tensor SolveLinearSystem(const nn::Tensor& a, const nn::Tensor& b);

}  // namespace imsr::core

#endif  // IMSR_CORE_PIT_H_
