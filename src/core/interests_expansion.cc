#include "core/interests_expansion.h"

#include "obs/obs.h"
#include "util/check.h"

namespace imsr::core {

void ExpandUserInterests(models::MsrModel* model,
                         InterestStore* store,
                         data::UserId user,
                         const std::vector<data::ItemId>& items,
                         int span,
                         const ExpansionConfig& config,
                         util::Rng& rng,
                         nn::Optimizer* optimizer,
                         ExpansionOutcome* outcome) {
  IMSR_CHECK(model != nullptr);
  IMSR_CHECK(store != nullptr);
  IMSR_CHECK(outcome != nullptr);
  IMSR_CHECK_GE(config.delta_k, 1);

  const int64_t dim = model->config().embedding_dim;
  if (static_cast<int>(items.size()) < config.min_span_items) return;
  IMSR_CHECK(store->Has(user))
      << "expansion requires an initialised store entry for user " << user;
  ++outcome->users_considered;
  IMSR_COUNTER_ADD("nid/users_considered", 1);

  const int64_t k_prev = store->NumInterests(user);
  if (k_prev + config.delta_k > config.max_interests) return;

  // --- NID: detect whether this user's new interactions are puzzled ---
  const nn::Tensor item_embeddings =
      model->embeddings().LookupNoGrad(items);
  if (!DetectNewInterests(item_embeddings, store->Interests(user),
                          config.nid)) {
    return;
  }
  ++outcome->users_expanded;
  IMSR_COUNTER_ADD("nid/users_expanded", 1);

  // --- allocate delta-K fresh vectors (Alg. 1 lines 7-11) ---
  const nn::Tensor stored_existing = store->Interests(user);
  const nn::Tensor fresh =
      nn::Tensor::Randn({config.delta_k, dim}, rng);
  store->Append(user, fresh, span);
  model->extractor().EnsureUserCapacity(user, store->NumInterests(user),
                                        rng, optimizer);

  // --- re-extract with the expanded capacity (Alg. 1 line 12) ---
  const nn::Tensor extracted = model->ForwardInterestsNoGrad(
      items, store->Interests(user), user);

  // --- PIT: projection + trimming (Alg. 1 lines 13-16). The projection
  // basis is the *stored* existing interests (the semantics to be
  // preserved), and only the freshly learned rows are candidates; the
  // existing rows themselves are not overwritten here — the span's
  // training plus the evidence-gated refresh adjust them later.
  const nn::Tensor candidates = nn::ConcatRows(
      {stored_existing, extracted.RowSlice(k_prev, extracted.size(0))});
  const TrimResult trimmed =
      ProjectAndTrim(candidates, k_prev, config.pit);
  const int kept_new =
      static_cast<int>(trimmed.kept.size()) - static_cast<int>(k_prev);
  outcome->interests_added += kept_new;
  outcome->interests_trimmed += config.delta_k - kept_new;
  IMSR_COUNTER_ADD("pit/interests_allocated", config.delta_k);
  IMSR_COUNTER_ADD("pit/interests_added", kept_new);
  IMSR_COUNTER_ADD("pit/interests_trimmed", config.delta_k - kept_new);

  store->Keep(user, trimmed.kept);
  store->SetInterests(user, trimmed.interests);
  model->extractor().KeepUserInterests(user, trimmed.kept, optimizer);

  // --- final extraction with the trimmed set (Alg. 1 line 17),
  // updating the new rows only ---
  if (kept_new > 0) {
    const nn::Tensor re_extracted = model->ForwardInterestsNoGrad(
        items, store->Interests(user), user);
    nn::Tensor merged = store->Interests(user);
    for (int64_t row = k_prev; row < merged.size(0); ++row) {
      merged.SetRow(row, re_extracted.Row(row));
    }
    store->SetInterests(user, std::move(merged));
  }
}

ExpansionOutcome RunInterestsExpansion(models::MsrModel* model,
                                       InterestStore* store,
                                       const data::Dataset& dataset,
                                       int span,
                                       const ExpansionConfig& config,
                                       util::Rng& rng,
                                       nn::Optimizer* optimizer) {
  IMSR_TRACE_SPAN("expansion/run");
  ExpansionOutcome outcome;
  for (data::UserId user : dataset.active_users(span)) {
    const data::UserSpanData& span_data = dataset.user_span(user, span);
    ExpandUserInterests(model, store, user, span_data.all, span, config,
                        rng, optimizer, &outcome);
  }
  return outcome;
}

}  // namespace imsr::core
