// End-to-end experiment runner: pretrain, loop over incremental spans,
// evaluate on the next span after each, time everything. Every bench and
// example drives experiments through this interface.
#ifndef IMSR_CORE_EXPERIMENT_H_
#define IMSR_CORE_EXPERIMENT_H_

#include <vector>

#include "core/strategies.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

namespace imsr::core {

struct ExperimentConfig {
  models::ModelConfig model;
  StrategyConfig strategy;
  eval::EvalConfig eval;
  uint64_t seed = 7;
};

struct SpanMetrics {
  int trained_through_span = 0;  // 0 = pretraining only
  int test_span = 1;
  double hit_ratio = 0.0;
  double ndcg = 0.0;
  int64_t evaluated_users = 0;
  double train_seconds = 0.0;     // time spent training this span
  double infer_ms_per_user = 0.0;
  double avg_interests = 0.0;     // store average after training
};

struct ExperimentResult {
  std::vector<SpanMetrics> spans;  // index 0 = pretraining eval
  // Paper protocol: averages over the incremental spans 1..T-1 (the
  // pretraining-only entry is excluded).
  double avg_hit_ratio = 0.0;
  double avg_ndcg = 0.0;
  ExpansionOutcome expansion;  // IMSR-family diagnostics (zeros otherwise)
};

// Runs one strategy over `dataset`. Deterministic given config seeds.
ExperimentResult RunExperiment(const data::Dataset& dataset,
                               const ExperimentConfig& config);

// Convenience: averages HR/NDCG of repeated runs with distinct seeds.
ExperimentResult RunRepeatedExperiment(const data::Dataset& dataset,
                                       const ExperimentConfig& config,
                                       int repeats);

// Per-repeat HR/NDCG pairs (for significance tests).
struct RepeatedScores {
  std::vector<double> hit_ratios;
  std::vector<double> ndcgs;
};
RepeatedScores CollectRepeatedScores(const data::Dataset& dataset,
                                     const ExperimentConfig& config,
                                     int repeats);

}  // namespace imsr::core

#endif  // IMSR_CORE_EXPERIMENT_H_
