#include "core/imsr_trainer.h"

#include <algorithm>
#include <numeric>

#include "models/aggregator.h"
#include "models/sampled_softmax.h"
#include "nn/ops.h"
#include "obs/obs.h"
#include "serve/registry.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace imsr::core {

ImsrTrainer::ImsrTrainer(models::MsrModel* model, InterestStore* store,
                         const TrainConfig& config)
    : model_(model),
      store_(store),
      config_(config),
      optimizer_(config.learning_rate),
      rng_(config.seed),
      negative_sampler_(static_cast<int32_t>(model->num_items())) {
  IMSR_CHECK(model != nullptr);
  IMSR_CHECK(store != nullptr);
  IMSR_CHECK_GT(config.batch_size, 0);
  IMSR_CHECK_GT(config.negatives, 0);
  for (const nn::Var& parameter : model_->SharedParameters()) {
    optimizer_.Register(parameter);
  }
}

void ImsrTrainer::EnsureUserState(const data::Dataset& dataset, int span) {
  const int64_t dim = model_->config().embedding_dim;
  for (data::UserId user : dataset.active_users(span)) {
    if (!store_->Has(user)) {
      store_->Initialize(user, config_.initial_interests, dim, span, rng_);
    }
    model_->extractor().EnsureUserCapacity(
        user, store_->NumInterests(user), rng_, &optimizer_);
  }
}

nn::Var ImsrTrainer::SampleLoss(const data::TrainingSample& sample,
                                const TeacherSnapshot* teacher) {
  IMSR_CHECK(store_->Has(sample.user));
  const nn::Tensor& interest_init = store_->Interests(sample.user);
  nn::Var interests =
      model_->ForwardInterests(sample.history, interest_init, sample.user);

  // Target embedding as a (d) vector.
  nn::Var target_embedding =
      model_->embeddings().LookupOne(sample.target);

  // Eq. 5 + Eq. 6. The candidate list is trainer-owned scratch: target
  // first, then the negatives drawn straight into the same buffer (same
  // RNG call sequence as the old Sample + insert).
  nn::Var user_repr =
      models::AttentiveAggregate(interests, target_embedding);
  std::vector<data::ItemId>& candidates = scratch_.candidates;
  candidates.clear();
  candidates.push_back(sample.target);
  negative_sampler_.SampleInto(config_.negatives, sample.target, rng_,
                               &candidates);
  nn::Var candidate_embeddings = model_->embeddings().Lookup(candidates);
  nn::Var loss = models::SampledSoftmaxLoss(user_repr,
                                            candidate_embeddings);

  // Eq. 10, when a teacher snapshot covers this user. Distillation runs
  // over the whole candidate set so the scores of dormant interests stay
  // stable under negative sampling.
  if (teacher != nullptr && config_.eir.kind != RetentionKind::kNone) {
    auto it = teacher->interests.find(sample.user);
    if (it != teacher->interests.end() &&
        it->second.size(0) <= interests.value().size(0)) {
      std::vector<int64_t>& candidate_indices =
          scratch_.candidate_indices;
      candidate_indices.assign(candidates.begin(), candidates.end());
      const nn::Tensor teacher_candidates =
          nn::GatherRows(teacher->embeddings, candidate_indices);
      nn::Var retention =
          RetentionLoss(config_.eir, interests, it->second,
                        candidate_embeddings, teacher_candidates);
      IMSR_HISTOGRAM_RECORD_WITH("trainer/kd_loss",
                                 obs::Histogram::LossBounds(),
                                 retention.value().item());
      IMSR_COUNTER_ADD("trainer/kd_samples", 1);
      loss = nn::ops::Add(
          loss, nn::ops::Scale(retention, config_.eir.coefficient));
    }
  }
  return loss;
}

nn::Var ImsrTrainer::BatchLoss(
    const std::vector<data::TrainingSample>& samples,
    const size_t* indices, size_t count, const TeacherSnapshot* teacher) {
  IMSR_CHECK_GT(count, 0u);
  const auto block = static_cast<size_t>(1 + config_.negatives);
  std::vector<nn::Var>& interests = scratch_.interests;
  std::vector<nn::Var>& reprs = scratch_.reprs;
  std::vector<data::ItemId>& targets = scratch_.batch_targets;
  std::vector<data::ItemId>& flat = scratch_.flat_candidates;
  std::vector<data::ItemId>& flat_history = scratch_.flat_history;
  std::vector<int64_t>& history_offsets = scratch_.history_offsets;
  std::vector<const nn::Tensor*>& interest_inits = scratch_.interest_inits;
  std::vector<data::UserId>& batch_users = scratch_.batch_users;
  interests.clear();
  reprs.clear();
  targets.clear();
  flat.clear();
  flat_history.clear();
  history_offsets.clear();
  interest_inits.clear();
  batch_users.clear();

  // Pass 1, per sample in order: concatenate the history and draw the
  // sample's negatives. The trainer rng_ sees the exact draw sequence
  // of the per-sample path; the extractor's own rng stream runs inside
  // the batched forward below, also in ascending sample order.
  history_offsets.push_back(0);
  for (size_t i = 0; i < count; ++i) {
    const data::TrainingSample& sample = samples[indices[i]];
    IMSR_CHECK(store_->Has(sample.user));
    flat_history.insert(flat_history.end(), sample.history.begin(),
                        sample.history.end());
    history_offsets.push_back(static_cast<int64_t>(flat_history.size()));
    interest_inits.push_back(&store_->Interests(sample.user));
    batch_users.push_back(sample.user);
    targets.push_back(sample.target);
    flat.push_back(sample.target);
    negative_sampler_.SampleInto(config_.negatives, sample.target, rng_,
                                 &flat);
  }
  // Pass 2: one (B x d) target gather — created before the interest
  // forward so the fused readout nodes can take it as a parent (the
  // backward traversal follows graph edges, not creation order, so the
  // reference path below is unaffected by the hoist) — then the
  // per-sample representations, one (B*C x d) candidate gather and one
  // fused loss node (Eq. 6).
  nn::Var target_embeddings = model_->embeddings().Lookup(targets);
  // The retention loss needs the interest matrices as graph handles,
  // which the fused readout never materialises — KD-covered batches take
  // the reference chain instead.
  const bool need_interest_vars =
      teacher != nullptr && config_.eir.kind != RetentionKind::kNone;
  if (need_interest_vars ||
      !model_->ForwardReprsBatch(flat_history, history_offsets,
                                 interest_inits, batch_users,
                                 target_embeddings, &reprs)) {
    model_->ForwardInterestsBatch(flat_history, history_offsets,
                                  interest_inits, batch_users, &interests);
    for (size_t b = 0; b < count; ++b) {
      nn::Var target_embedding = nn::ops::RowVector(
          target_embeddings, static_cast<int64_t>(b));
      reprs.push_back(
          models::AttentiveAggregate(interests[b], target_embedding));
    }
  }
  nn::Var candidate_embeddings = model_->embeddings().Lookup(flat);
  nn::Var loss = models::SampledSoftmaxBatchLoss(
      reprs, candidate_embeddings, static_cast<int64_t>(block));

  // Eq. 10 per covered sample, over a row slice of the shared candidate
  // gather — retention gradients merge into the slice (then the gather)
  // in the same order the per-sample path merges them into its gather.
  if (teacher != nullptr && config_.eir.kind != RetentionKind::kNone) {
    for (size_t b = 0; b < count; ++b) {
      const data::TrainingSample& sample = samples[indices[b]];
      auto it = teacher->interests.find(sample.user);
      if (it == teacher->interests.end() ||
          it->second.size(0) > interests[b].value().size(0)) {
        continue;
      }
      std::vector<int64_t>& candidate_indices =
          scratch_.candidate_indices;
      candidate_indices.assign(
          flat.begin() + static_cast<int64_t>(b * block),
          flat.begin() + static_cast<int64_t>((b + 1) * block));
      const nn::Tensor teacher_candidates =
          nn::GatherRows(teacher->embeddings, candidate_indices);
      nn::Var sample_candidates = nn::ops::RowSlice(
          candidate_embeddings, static_cast<int64_t>(b * block),
          static_cast<int64_t>((b + 1) * block));
      nn::Var retention =
          RetentionLoss(config_.eir, interests[b], it->second,
                        sample_candidates, teacher_candidates);
      IMSR_HISTOGRAM_RECORD_WITH("trainer/kd_loss",
                                 obs::Histogram::LossBounds(),
                                 retention.value().item());
      IMSR_COUNTER_ADD("trainer/kd_samples", 1);
      loss = nn::ops::Add(
          loss, nn::ops::Scale(retention, config_.eir.coefficient));
    }
  }
  // Drop the graph handles so arena Reset() after the step is the only
  // owner teardown; capacities stay for the next batch.
  interests.clear();
  reprs.clear();
  return loss;
}

double ImsrTrainer::TrainEpoch(
    const std::vector<data::TrainingSample>& samples,
    const TeacherSnapshot* teacher) {
  if (samples.empty()) return 0.0;
  IMSR_TRACE_SPAN("trainer/epoch");
  std::vector<size_t>& order = scratch_.order;
  order.resize(samples.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.Shuffle(order);

  // Every graph node this epoch builds is carved from the trainer's
  // arena and recycled at the end of each optimizer step.
  nn::GraphArenaScope arena_scope(&arena_);

  double epoch_loss = 0.0;
  for (size_t begin = 0; begin < order.size();
       begin += static_cast<size_t>(config_.batch_size)) {
    IMSR_OBS_ONLY(util::Stopwatch step_timer;)
    const size_t end = std::min(
        order.size(), begin + static_cast<size_t>(config_.batch_size));
    nn::Var batch_loss;
    if (config_.batched) {
      batch_loss =
          BatchLoss(samples, order.data() + begin, end - begin, teacher);
    } else {
      for (size_t i = begin; i < end; ++i) {
        nn::Var loss = SampleLoss(samples[order[i]], teacher);
        batch_loss =
            batch_loss.defined() ? nn::ops::Add(batch_loss, loss) : loss;
      }
    }
    batch_loss = nn::ops::Scale(batch_loss,
                                1.0f / static_cast<float>(end - begin));
    batch_loss.Backward();
    // Read the scalar before dropping the graph; Step() only touches
    // parameters, so the value is the same either side of it.
    epoch_loss += static_cast<double>(batch_loss.value().item()) *
                  static_cast<double>(end - begin);
    optimizer_.Step();
    optimizer_.ZeroGradAll();
    batch_loss = nn::Var();
    arena_.Reset();
    IMSR_COUNTER_ADD("trainer/steps", 1);
    IMSR_HISTOGRAM_RECORD("trainer/step_latency_ms",
                          step_timer.ElapsedMillis());
  }
  IMSR_GAUGE_SET("memory/arena_high_water_bytes",
                 static_cast<double>(arena_.high_water_bytes()));
  const double mean_loss =
      epoch_loss / static_cast<double>(samples.size());
  IMSR_GAUGE_SET("trainer/epoch_loss", mean_loss);
  return mean_loss;
}

double ImsrTrainer::ValidationLoss(const data::Dataset& dataset,
                                   int span) {
  // Evaluation only: skip tape construction entirely.
  nn::NoGradGuard no_grad;
  double total = 0.0;
  int64_t count = 0;
  for (data::UserId user : dataset.active_users(span)) {
    const data::UserSpanData& span_data = dataset.user_span(user, span);
    if (span_data.valid < 0 || span_data.train.empty()) continue;
    if (!store_->Has(user)) continue;
    data::TrainingSample sample;
    sample.user = user;
    sample.target = span_data.valid;
    sample.history = span_data.train;
    if (static_cast<int>(sample.history.size()) > config_.max_history) {
      sample.history.erase(
          sample.history.begin(),
          sample.history.end() - config_.max_history);
    }
    total += SampleLoss(sample, /*teacher=*/nullptr).value().item();
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

namespace {

// Tracks the best validation loss; returns true when training should stop.
class EarlyStopper {
 public:
  EarlyStopper(bool enabled, int patience)
      : enabled_(enabled), patience_(patience) {}

  bool ShouldStop(double validation_loss) {
    if (!enabled_) return false;
    if (validation_loss < best_ - 1e-6) {
      best_ = validation_loss;
      stale_ = 0;
      return false;
    }
    return ++stale_ >= patience_;
  }

 private:
  bool enabled_;
  int patience_;
  double best_ = 1e300;
  int stale_ = 0;
};

}  // namespace

void ImsrTrainer::Pretrain(const data::Dataset& dataset) {
  IMSR_TRACE_SPAN("trainer/pretrain");
  EnsureUserState(dataset, /*span=*/0);
  const std::vector<data::TrainingSample> samples =
      data::BuildSpanSamples(dataset, /*span=*/0, config_.max_history);
  EarlyStopper stopper(config_.early_stopping,
                       config_.early_stopping_patience);
  for (int epoch = 0; epoch < config_.pretrain_epochs; ++epoch) {
    // Train unconditionally; obs macros must never carry side effects
    // (they compile out under -DIMSR_OBS=OFF).
    [[maybe_unused]] const double epoch_loss =
        TrainEpoch(samples, /*teacher=*/nullptr);
    IMSR_GAUGE_SET("trainer/pretrain_loss", epoch_loss);
    if (config_.early_stopping &&
        stopper.ShouldStop(ValidationLoss(dataset, 0))) {
      break;
    }
  }
  RefreshInterests(dataset, /*span=*/0);
  MaybePublishSnapshot(/*span=*/0);
}

void ImsrTrainer::MaybePublishSnapshot(int span) {
  if (registry_ == nullptr) return;
  registry_->Publish(serve::BuildSnapshot(*model_, *store_, span));
}

void ImsrTrainer::TrainSpan(
    const data::Dataset& dataset, int span,
    const std::vector<data::TrainingSample>* extra_samples) {
  IMSR_CHECK_GE(span, 1);
  IMSR_TRACE_SPAN("trainer/span");
  IMSR_GAUGE_SET("trainer/current_span", static_cast<double>(span));
  // Snapshot the teacher before EnsureUserState so first-seen users (whose
  // interests are still random) are not anchored to noise.
  TeacherSnapshot teacher;
  if (config_.eir.kind != RetentionKind::kNone) {
    teacher = SnapshotTeacher(dataset, span);
  }
  EnsureUserState(dataset, span);
  const TeacherSnapshot* teacher_ptr =
      config_.eir.kind != RetentionKind::kNone ? &teacher : nullptr;

  std::vector<data::TrainingSample> samples =
      data::BuildSpanSamples(dataset, span, config_.max_history);
  if (extra_samples != nullptr) {
    samples.insert(samples.end(), extra_samples->begin(),
                   extra_samples->end());
  }

  EarlyStopper stopper(config_.early_stopping,
                       config_.early_stopping_patience);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.enable_expansion &&
        (epoch == 0 || config_.expansion_every_epoch)) {
      const ExpansionOutcome outcome = RunInterestsExpansion(
          model_, store_, dataset, span, config_.expansion, rng_,
          &optimizer_);
      expansion_totals_.users_considered += outcome.users_considered;
      expansion_totals_.users_expanded += outcome.users_expanded;
      expansion_totals_.interests_added += outcome.interests_added;
      expansion_totals_.interests_trimmed += outcome.interests_trimmed;
    }
    [[maybe_unused]] const double epoch_loss =
        TrainEpoch(samples, teacher_ptr);
    IMSR_GAUGE_SET("trainer/span_loss", epoch_loss);
    if (config_.early_stopping &&
        stopper.ShouldStop(ValidationLoss(dataset, span))) {
      break;
    }
  }
  RefreshInterests(dataset, span);
  MaybePublishSnapshot(span);
}

void ImsrTrainer::RefreshInterests(const data::Dataset& dataset, int span) {
  IMSR_TRACE_SPAN("trainer/refresh_interests");
  for (data::UserId user : dataset.active_users(span)) {
    const data::UserSpanData& span_data = dataset.user_span(user, span);
    std::vector<data::ItemId> items = span_data.all;
    if (static_cast<int>(items.size()) > config_.max_history) {
      items.erase(items.begin(),
                  items.end() - config_.max_history);
    }
    const nn::Tensor& stored = store_->Interests(user);
    if (!config_.persist_interests && span > 0) {
      // Baseline behaviour (§III): interests are whatever the extractor
      // finds in the *current* span, routed from a fresh random seed —
      // interests the user did not express this span are forgotten.
      const nn::Tensor fresh_seed = nn::Tensor::Randn(
          {stored.size(0), stored.size(1)}, rng_);
      store_->SetInterests(
          user, model_->ForwardInterestsNoGrad(items, fresh_seed, user));
      continue;
    }
    nn::Tensor refreshed =
        model_->ForwardInterestsNoGrad(items, stored, user);
    // Evidence gating: an interest none of the span's items are assigned
    // to (cosine argmax) keeps its stored vector — existing interests are
    // preserved, not overwritten by unrelated interactions (§IV-B's
    // premise). Interests with assigned items absorb them and drift
    // modestly. Interests born this span are always taken from the fresh
    // extraction.
    if (span > 0 && config_.min_evidence_items > 0) {
      const std::vector<int> assigned =
          CountAssignedItems(model_->embeddings().LookupNoGrad(items),
                             stored);
      const std::vector<int>& births = store_->BirthSpans(user);
      for (int64_t k = 0; k < refreshed.size(0); ++k) {
        const bool born_this_span =
            births[static_cast<size_t>(k)] == span;
        if (!born_this_span &&
            assigned[static_cast<size_t>(k)] <
                config_.min_evidence_items) {
          refreshed.SetRow(k, stored.Row(k));
        }
      }
    }
    store_->SetInterests(user, std::move(refreshed));
  }
}

void ImsrTrainer::RefreshUserInterests(data::UserId user,
                                       std::vector<data::ItemId> items) {
  IMSR_CHECK(store_->Has(user));
  IMSR_CHECK(!items.empty());
  if (static_cast<int>(items.size()) > config_.max_history) {
    items.erase(items.begin(), items.end() - config_.max_history);
  }
  const nn::Tensor& stored = store_->Interests(user);
  const nn::Tensor seed =
      config_.persist_interests
          ? stored
          : nn::Tensor::Randn({stored.size(0), stored.size(1)}, rng_);
  store_->SetInterests(user,
                       model_->ForwardInterestsNoGrad(items, seed, user));
}

TeacherSnapshot ImsrTrainer::SnapshotTeacher(const data::Dataset& dataset,
                                             int span) const {
  TeacherSnapshot teacher;
  teacher.embeddings = model_->embeddings().parameter().value();
  for (data::UserId user : dataset.active_users(span)) {
    if (store_->Has(user)) {
      teacher.interests.emplace(user, store_->Interests(user));
    }
  }
  return teacher;
}

}  // namespace imsr::core
