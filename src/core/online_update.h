// Serving-time interest updating between training spans. The paper's
// related work (MIMN, LimaRec) updates user representations online while
// model parameters stay fixed; this module provides the same capability
// for the IMSR interest store: each incoming interaction softly rotates
// the best-matching stored interest towards the item, without touching
// model parameters — a cheap stop-gap until the next incremental
// training run folds the span in properly.
#ifndef IMSR_CORE_ONLINE_UPDATE_H_
#define IMSR_CORE_ONLINE_UPDATE_H_

#include "core/interest_store.h"
#include "models/embedding.h"

namespace imsr::core {

struct OnlineUpdateConfig {
  // Step size of the soft write; 0 disables updating.
  float rate = 0.2f;
  // Softmax temperature over cosine similarities when distributing the
  // write across interests.
  float temperature = 0.2f;
};

class OnlineUpdater {
 public:
  OnlineUpdater(InterestStore* store, const models::EmbeddingTable* table,
                const OnlineUpdateConfig& config);

  // Absorbs one interaction: distributes a norm-preserving pull towards
  // the item over the user's interests (softmax of cosine similarities).
  // No-op for users without stored interests.
  void Absorb(data::UserId user, data::ItemId item);

  // Absorbs a whole mini-session in order.
  void AbsorbSequence(data::UserId user,
                      const std::vector<data::ItemId>& items);

  int64_t updates_applied() const { return updates_applied_; }

 private:
  InterestStore* store_;
  const models::EmbeddingTable* table_;
  OnlineUpdateConfig config_;
  int64_t updates_applied_ = 0;
};

}  // namespace imsr::core

#endif  // IMSR_CORE_ONLINE_UPDATE_H_
