#include "core/nid.h"

#include <cmath>

#include "obs/obs.h"
#include "util/check.h"
#include "util/math_util.h"

namespace imsr::core {
namespace {

// Cosine logits between one embedding row and every interest row.
std::vector<double> CosineLogits(const nn::Tensor& item_embedding,
                                 const nn::Tensor& interests) {
  IMSR_CHECK_EQ(item_embedding.dim(), 1);
  IMSR_CHECK_EQ(interests.dim(), 2);
  IMSR_CHECK_EQ(item_embedding.numel(), interests.size(1));
  const int64_t k = interests.size(0);
  const int64_t d = interests.size(1);
  const float item_norm = nn::L2NormFlat(item_embedding);
  std::vector<double> logits(static_cast<size_t>(k), 0.0);
  for (int64_t row = 0; row < k; ++row) {
    double dot = 0.0;
    double row_ss = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const float h = interests.at(row, j);
      dot += static_cast<double>(item_embedding.at(j)) * h;
      row_ss += static_cast<double>(h) * h;
    }
    const double denom =
        static_cast<double>(item_norm) * std::sqrt(row_ss);
    logits[static_cast<size_t>(row)] = denom > 1e-12 ? dot / denom : 0.0;
  }
  return logits;
}

}  // namespace

std::vector<double> AssignmentDistribution(const nn::Tensor& item_embedding,
                                           const nn::Tensor& interests) {
  std::vector<double> probs = CosineLogits(item_embedding, interests);
  util::SoftmaxInPlace(probs);
  return probs;
}

double AssignmentKl(const nn::Tensor& item_embedding,
                    const nn::Tensor& interests) {
  const std::vector<double> logits =
      CosineLogits(item_embedding, interests);
  // Eq. 12: KL(q || p) = logsumexp(x) - mean(x) - ln K, with q uniform.
  const double lse = util::LogSumExp(logits);
  const double mean = util::Mean(logits);
  const double kl =
      lse - mean - std::log(static_cast<double>(logits.size()));
  // Numerically the expression can dip a hair below zero.
  return kl < 0.0 ? 0.0 : kl;
}

double ItemPuzzlement(const nn::Tensor& item_embedding,
                      const nn::Tensor& interests) {
  return -AssignmentKl(item_embedding, interests);
}

double MeanAssignmentKl(const nn::Tensor& item_embeddings,
                        const nn::Tensor& interests) {
  IMSR_CHECK_EQ(item_embeddings.dim(), 2);
  const int64_t n = item_embeddings.size(0);
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    total += AssignmentKl(item_embeddings.Row(i), interests);
  }
  return total / static_cast<double>(n);
}

bool DetectNewInterests(const nn::Tensor& item_embeddings,
                        const nn::Tensor& interests,
                        const NidConfig& config) {
  const double mean_kl = MeanAssignmentKl(item_embeddings, interests);
  // Per-user mean KL distribution (Fig. 2's signal): low KL == puzzled.
  IMSR_HISTOGRAM_RECORD_WITH("nid/puzzlement",
                             obs::Histogram::PuzzlementBounds(), mean_kl);
  IMSR_COUNTER_ADD("nid/detections", 1);
  return mean_kl < config.c1;
}

std::vector<int> CountAssignedItems(const nn::Tensor& item_embeddings,
                                    const nn::Tensor& interests) {
  IMSR_CHECK_EQ(item_embeddings.dim(), 2);
  std::vector<int> counts(static_cast<size_t>(interests.size(0)), 0);
  for (int64_t i = 0; i < item_embeddings.size(0); ++i) {
    const std::vector<double> logits =
        CosineLogits(item_embeddings.Row(i), interests);
    size_t best = 0;
    for (size_t k = 1; k < logits.size(); ++k) {
      if (logits[k] > logits[best]) best = k;
    }
    ++counts[best];
  }
  return counts;
}

}  // namespace imsr::core
