#include "core/interest_store.h"

#include <algorithm>

#include "util/check.h"

namespace imsr::core {

bool InterestStore::Has(data::UserId user) const {
  return entries_.count(user) > 0;
}

int64_t InterestStore::NumInterests(data::UserId user) const {
  auto it = entries_.find(user);
  return it == entries_.end() ? 0 : it->second.interests.size(0);
}

const nn::Tensor& InterestStore::Interests(data::UserId user) const {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  return it->second.interests;
}

const std::vector<int>& InterestStore::BirthSpans(data::UserId user) const {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  return it->second.birth_spans;
}

void InterestStore::Initialize(data::UserId user, int64_t k0, int64_t dim,
                               int span, util::Rng& rng) {
  IMSR_CHECK_GT(k0, 0);
  Entry entry;
  entry.interests = nn::Tensor::Randn({k0, dim}, rng);
  entry.birth_spans.assign(static_cast<size_t>(k0), span);
  entries_[user] = std::move(entry);
}

void InterestStore::SetInterests(data::UserId user, nn::Tensor interests) {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  IMSR_CHECK_EQ(interests.size(0), it->second.interests.size(0))
      << "SetInterests must preserve K (use Append/Keep to resize)";
  IMSR_CHECK_EQ(interests.size(1), it->second.interests.size(1));
  it->second.interests = std::move(interests);
}

void InterestStore::Append(data::UserId user, const nn::Tensor& rows,
                           int span) {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  IMSR_CHECK_EQ(rows.size(1), it->second.interests.size(1));
  it->second.interests = nn::ConcatRows({it->second.interests, rows});
  for (int64_t r = 0; r < rows.size(0); ++r) {
    it->second.birth_spans.push_back(span);
  }
}

void InterestStore::Keep(data::UserId user,
                         const std::vector<int64_t>& kept) {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  IMSR_CHECK(!kept.empty()) << "a user must keep at least one interest";
  IMSR_CHECK(std::is_sorted(kept.begin(), kept.end()));
  const nn::Tensor& current = it->second.interests;
  nn::Tensor next({static_cast<int64_t>(kept.size()), current.size(1)});
  std::vector<int> next_births;
  next_births.reserve(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    IMSR_CHECK(kept[i] >= 0 && kept[i] < current.size(0));
    next.SetRow(static_cast<int64_t>(i), current.Row(kept[i]));
    next_births.push_back(
        it->second.birth_spans[static_cast<size_t>(kept[i])]);
  }
  it->second.interests = std::move(next);
  it->second.birth_spans = std::move(next_births);
}

void InterestStore::Clear() { entries_.clear(); }

std::vector<data::UserId> InterestStore::Users() const {
  std::vector<data::UserId> users;
  users.reserve(entries_.size());
  for (const auto& [user, entry] : entries_) users.push_back(user);
  std::sort(users.begin(), users.end());
  return users;
}

double InterestStore::AverageInterests() const {
  if (entries_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [user, entry] : entries_) {
    total += static_cast<double>(entry.interests.size(0));
  }
  return total / static_cast<double>(entries_.size());
}

void InterestStore::Save(util::BinaryWriter* writer) const {
  writer->WriteInt64(static_cast<int64_t>(entries_.size()));
  for (data::UserId user : Users()) {
    const Entry& entry = entries_.at(user);
    writer->WriteInt64(user);
    writer->WriteInt64(entry.interests.size(0));
    writer->WriteInt64(entry.interests.size(1));
    writer->WriteFloatArray(entry.interests.data(),
                            static_cast<size_t>(entry.interests.numel()));
    for (int span : entry.birth_spans) writer->WriteInt64(span);
  }
}

void InterestStore::Load(util::BinaryReader* reader) {
  entries_.clear();
  const int64_t count = reader->ReadInt64();
  for (int64_t i = 0; i < count; ++i) {
    const auto user = static_cast<data::UserId>(reader->ReadInt64());
    const int64_t k = reader->ReadInt64();
    const int64_t dim = reader->ReadInt64();
    Entry entry;
    entry.interests = nn::Tensor({k, dim});
    reader->ReadFloatArray(entry.interests.data(),
                           static_cast<size_t>(entry.interests.numel()));
    entry.birth_spans.reserve(static_cast<size_t>(k));
    for (int64_t r = 0; r < k; ++r) {
      entry.birth_spans.push_back(static_cast<int>(reader->ReadInt64()));
    }
    entries_[user] = std::move(entry);
  }
}

}  // namespace imsr::core
