#include "core/interest_store.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"

namespace imsr::core {

namespace {
// Process-wide mutation counter: every Touch() anywhere draws a fresh
// value, so a revision can never repeat — across time or across store
// instances (see InterestStore::revision()).
std::atomic<uint64_t> g_store_revision{0};
}  // namespace

void InterestStore::Touch() {
  revision_ = g_store_revision.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool InterestStore::Has(data::UserId user) const {
  return entries_.count(user) > 0;
}

int64_t InterestStore::NumInterests(data::UserId user) const {
  auto it = entries_.find(user);
  return it == entries_.end() ? 0 : it->second.interests.size(0);
}

const nn::Tensor& InterestStore::Interests(data::UserId user) const {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  return it->second.interests;
}

const std::vector<int>& InterestStore::BirthSpans(data::UserId user) const {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  return it->second.birth_spans;
}

void InterestStore::Initialize(data::UserId user, int64_t k0, int64_t dim,
                               int span, util::Rng& rng) {
  IMSR_CHECK_GT(k0, 0);
  Entry entry;
  entry.interests = nn::Tensor::Randn({k0, dim}, rng);
  entry.birth_spans.assign(static_cast<size_t>(k0), span);
  entries_[user] = std::move(entry);
  Touch();
}

void InterestStore::SetInterests(data::UserId user, nn::Tensor interests) {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  IMSR_CHECK_EQ(interests.size(0), it->second.interests.size(0))
      << "SetInterests must preserve K (use Append/Keep to resize)";
  IMSR_CHECK_EQ(interests.size(1), it->second.interests.size(1));
  it->second.interests = std::move(interests);
  Touch();
}

void InterestStore::Append(data::UserId user, const nn::Tensor& rows,
                           int span) {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  IMSR_CHECK_EQ(rows.size(1), it->second.interests.size(1));
  it->second.interests = nn::ConcatRows({it->second.interests, rows});
  for (int64_t r = 0; r < rows.size(0); ++r) {
    it->second.birth_spans.push_back(span);
  }
  Touch();
}

void InterestStore::Keep(data::UserId user,
                         const std::vector<int64_t>& kept) {
  auto it = entries_.find(user);
  IMSR_CHECK(it != entries_.end()) << "no interests for user " << user;
  IMSR_CHECK(!kept.empty()) << "a user must keep at least one interest";
  IMSR_CHECK(std::is_sorted(kept.begin(), kept.end()));
  const nn::Tensor& current = it->second.interests;
  nn::Tensor next({static_cast<int64_t>(kept.size()), current.size(1)});
  std::vector<int> next_births;
  next_births.reserve(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    IMSR_CHECK(kept[i] >= 0 && kept[i] < current.size(0));
    next.SetRow(static_cast<int64_t>(i), current.Row(kept[i]));
    next_births.push_back(
        it->second.birth_spans[static_cast<size_t>(kept[i])]);
  }
  it->second.interests = std::move(next);
  it->second.birth_spans = std::move(next_births);
  Touch();
}

void InterestStore::Clear() {
  entries_.clear();
  Touch();
}

std::vector<data::UserId> InterestStore::Users() const {
  std::vector<data::UserId> users;
  users.reserve(entries_.size());
  for (const auto& [user, entry] : entries_) users.push_back(user);
  std::sort(users.begin(), users.end());
  return users;
}

PackedInterests InterestStore::ExportPacked() const {
  PackedInterests packed;
  packed.users = Users();
  packed.row_begin.reserve(packed.users.size());
  packed.counts.reserve(packed.users.size());
  int64_t rows = 0;
  for (data::UserId user : packed.users) {
    const nn::Tensor& interests = entries_.at(user).interests;
    if (packed.dim == 0) packed.dim = interests.size(1);
    IMSR_CHECK_EQ(interests.size(1), packed.dim);
    packed.row_begin.push_back(rows);
    packed.counts.push_back(static_cast<int32_t>(interests.size(0)));
    rows += interests.size(0);
  }
  packed.data.reserve(static_cast<size_t>(rows * packed.dim));
  for (data::UserId user : packed.users) {
    const nn::Tensor& interests = entries_.at(user).interests;
    packed.data.insert(packed.data.end(), interests.data(),
                       interests.data() + interests.numel());
  }
  return packed;
}

double InterestStore::AverageInterests() const {
  if (entries_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [user, entry] : entries_) {
    total += static_cast<double>(entry.interests.size(0));
  }
  return total / static_cast<double>(entries_.size());
}

void InterestStore::Save(util::BinaryWriter* writer) const {
  writer->WriteInt64(static_cast<int64_t>(entries_.size()));
  for (data::UserId user : Users()) {
    const Entry& entry = entries_.at(user);
    writer->WriteInt64(user);
    writer->WriteInt64(entry.interests.size(0));
    writer->WriteInt64(entry.interests.size(1));
    writer->WriteFloatArray(entry.interests.data(),
                            static_cast<size_t>(entry.interests.numel()));
    for (int span : entry.birth_spans) writer->WriteInt64(span);
  }
}

bool InterestStore::Load(util::BinaryReader* reader, std::string* error,
                         int64_t expected_dim) {
  auto propagate = [&] {
    *error = reader->error();
    return false;
  };
  int64_t count = 0;
  if (!reader->TryReadInt64(&count)) return propagate();
  // Each user entry needs at least 3 int64s before any payload.
  if (count < 0 || static_cast<uint64_t>(count) >
                       reader->remaining() / (3 * sizeof(int64_t))) {
    *error = "corrupt interest-store user count " + std::to_string(count);
    return false;
  }
  std::unordered_map<data::UserId, Entry> entries;
  entries.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    int64_t user = 0;
    int64_t k = 0;
    int64_t dim = 0;
    if (!reader->TryReadInt64(&user) || !reader->TryReadInt64(&k) ||
        !reader->TryReadInt64(&dim)) {
      return propagate();
    }
    // A valid entry always has >= 1 interest row; bound k and dim so the
    // (k x dim) allocation cannot exceed the bytes actually present.
    if (k <= 0 || dim <= 0 ||
        static_cast<uint64_t>(k) > reader->remaining() / sizeof(float) /
                                       static_cast<uint64_t>(dim)) {
      *error = "corrupt interest shape (" + std::to_string(k) + " x " +
               std::to_string(dim) + ") for user " + std::to_string(user);
      return false;
    }
    if (expected_dim > 0 && dim != expected_dim) {
      *error = "interest dim mismatch for user " + std::to_string(user) +
               ": checkpoint has " + std::to_string(dim) +
               ", model expects " + std::to_string(expected_dim);
      return false;
    }
    Entry entry;
    entry.interests = nn::Tensor({k, dim});
    if (!reader->TryReadFloatArray(
            entry.interests.data(),
            static_cast<size_t>(entry.interests.numel()))) {
      return propagate();
    }
    entry.birth_spans.reserve(static_cast<size_t>(k));
    for (int64_t r = 0; r < k; ++r) {
      int64_t span = 0;
      if (!reader->TryReadInt64(&span)) return propagate();
      entry.birth_spans.push_back(static_cast<int>(span));
    }
    entries[static_cast<data::UserId>(user)] = std::move(entry);
  }
  entries_ = std::move(entries);
  Touch();
  return true;
}

}  // namespace imsr::core
