// Learning strategies compared in the paper (§V-A4): full retraining
// (FR), fine-tuning (FT), the proposed IMSR (with ablation switches), and
// the SML/ADER baselines implemented under src/baselines/.
#ifndef IMSR_CORE_STRATEGIES_H_
#define IMSR_CORE_STRATEGIES_H_

#include <memory>
#include <string>

#include "core/imsr_trainer.h"

namespace imsr::baselines {
struct SmlConfig;
struct AderConfig;
}  // namespace imsr::baselines

namespace imsr::core {

enum class StrategyKind {
  kFullRetrain,       // FR
  kFineTune,          // FT
  kImsr,              // IMSR (EIR + NID + PIT)
  kImsrNoExpansion,   // IMSR w/o NID & PIT (ablation)
  kImsrNoEir,         // IMSR w/o EIR (ablation)
  kSml,               // SML baseline
  kAder,              // ADER baseline
};

const char* StrategyKindName(StrategyKind kind);
StrategyKind StrategyKindFromName(const std::string& name);

struct StrategyConfig {
  StrategyKind kind = StrategyKind::kImsr;
  TrainConfig train;
  // FR trains fresh models on accumulated data; 0 means "use train.epochs".
  int fr_epochs = 0;
  // FR keeps the interest count comparable to IMSR's expanded models
  // (paper: "the interests number will be kept same as IMSR").
  int fr_initial_interests = 6;

  // SML baseline knobs (see baselines/sml.h).
  int sml_transfer_epochs = 2;
  int sml_hidden = 8;
  float sml_transfer_lr = 0.05f;
  int sml_max_transfer_samples = 512;

  // ADER baseline knobs (see baselines/ader.h).
  int ader_exemplars_per_span = 5;
  double ader_select_fraction = 0.5;
  int ader_max_selected = 2;  // replay budget per user per span
  int ader_max_exemplar_length = 5;
  float ader_kd_coefficient = 0.1f;
};

// A strategy drives one (model, interest store) pair through pretraining
// and the incremental spans.
class LearningStrategy {
 public:
  virtual ~LearningStrategy() = default;

  virtual void Pretrain(const data::Dataset& dataset) = 0;
  virtual void TrainIncrementalSpan(const data::Dataset& dataset,
                                    int span) = 0;

  models::MsrModel& model() { return *model_; }
  InterestStore& store() { return *store_; }

  static std::unique_ptr<LearningStrategy> Create(
      const StrategyConfig& config, models::MsrModel* model,
      InterestStore* store);

 protected:
  LearningStrategy(models::MsrModel* model, InterestStore* store)
      : model_(model), store_(store) {}

  models::MsrModel* model_;
  InterestStore* store_;
};

// FT / IMSR / ablations: one persistent trainer, per-span fine-tuning.
class FineTuneFamilyStrategy : public LearningStrategy {
 public:
  FineTuneFamilyStrategy(const TrainConfig& config,
                         models::MsrModel* model, InterestStore* store);

  void Pretrain(const data::Dataset& dataset) override;
  void TrainIncrementalSpan(const data::Dataset& dataset,
                            int span) override;

  ImsrTrainer& trainer() { return trainer_; }

 private:
  ImsrTrainer trainer_;
};

// FR: reinitialises the model each span and retrains on spans [0, t].
class FullRetrainStrategy : public LearningStrategy {
 public:
  FullRetrainStrategy(const StrategyConfig& config,
                      models::MsrModel* model, InterestStore* store);

  void Pretrain(const data::Dataset& dataset) override;
  void TrainIncrementalSpan(const data::Dataset& dataset,
                            int span) override;

 private:
  void RetrainFromScratch(const data::Dataset& dataset, int up_to_span);

  StrategyConfig config_;
  int generation_ = 0;  // varies the reinitialisation seed per span
};

}  // namespace imsr::core

#endif  // IMSR_CORE_STRATEGIES_H_
