#include "core/checkpoint.h"

#include <cstdio>

#include "util/crc32.h"
#include "util/serialization.h"

namespace imsr::core {
namespace {

constexpr char kMagicV1[] = "imsr-checkpoint-v1";
constexpr char kMagicV2[] = "imsr-checkpoint-v2";
constexpr char kSectionMeta[] = "meta";
constexpr char kSectionModel[] = "model";
constexpr char kSectionStore[] = "store";

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

void AppendSection(util::BinaryWriter* payload, const std::string& tag,
                   const util::BinaryWriter& body) {
  payload->WriteString(tag);
  payload->WriteInt64(static_cast<int64_t>(body.buffer().size()));
  payload->WriteBytes(body.buffer().data(), body.buffer().size());
}

// Shape metadata written alongside the state so a mismatched model is
// rejected with a clear message before any tensor is parsed.
struct CheckpointMeta {
  CheckpointMetadata metadata;
  std::string extractor_kind;
  int64_t embedding_dim = 0;
  int64_t attention_dim = 0;
  int64_t num_items = 0;
};

bool ParseMeta(util::BinaryReader* reader, CheckpointMeta* meta,
               std::string* error) {
  if (!reader->TryReadInt64(&meta->metadata.trained_through_span) ||
      !reader->TryReadString(&meta->metadata.note) ||
      !reader->TryReadString(&meta->extractor_kind) ||
      !reader->TryReadInt64(&meta->embedding_dim) ||
      !reader->TryReadInt64(&meta->attention_dim) ||
      !reader->TryReadInt64(&meta->num_items)) {
    SetError(error, "corrupt meta section: " + reader->error());
    return false;
  }
  return true;
}

bool ValidateMeta(const CheckpointMeta& meta, const models::MsrModel& model,
                  std::string* error) {
  const models::ModelConfig& config = model.config();
  if (meta.extractor_kind != models::ExtractorKindName(config.kind)) {
    SetError(error, "extractor kind mismatch: checkpoint has '" +
                        meta.extractor_kind + "', model expects '" +
                        models::ExtractorKindName(config.kind) + "'");
    return false;
  }
  if (meta.embedding_dim != config.embedding_dim) {
    SetError(error, "embedding dim mismatch: checkpoint has " +
                        std::to_string(meta.embedding_dim) +
                        ", model expects " +
                        std::to_string(config.embedding_dim));
    return false;
  }
  if (config.kind == models::ExtractorKind::kComiRecSa &&
      meta.attention_dim != config.attention_dim) {
    SetError(error, "attention dim mismatch: checkpoint has " +
                        std::to_string(meta.attention_dim) +
                        ", model expects " +
                        std::to_string(config.attention_dim));
    return false;
  }
  if (meta.num_items != model.num_items()) {
    SetError(error, "item count mismatch: checkpoint has " +
                        std::to_string(meta.num_items) +
                        ", model expects " +
                        std::to_string(model.num_items()));
    return false;
  }
  return true;
}

// Parses the framed v2 payload (already CRC-validated) into the staging
// model and store.
bool LoadV2Payload(util::BinaryReader* payload, models::MsrModel* staging,
                   InterestStore* staging_store, CheckpointMeta* meta,
                   std::string* error) {
  bool seen_meta = false;
  bool seen_model = false;
  bool seen_store = false;
  while (!payload->AtEnd()) {
    std::string tag;
    int64_t body_size = 0;
    if (!payload->TryReadString(&tag) ||
        !payload->TryReadInt64(&body_size)) {
      SetError(error, "corrupt section framing: " + payload->error());
      return false;
    }
    if (body_size < 0 ||
        static_cast<uint64_t>(body_size) > payload->remaining()) {
      SetError(error, "corrupt section '" + tag + "': body of " +
                          std::to_string(body_size) + " bytes, " +
                          std::to_string(payload->remaining()) + " remain");
      return false;
    }
    util::BinaryReader body(std::vector<uint8_t>(
        payload->current(), payload->current() + body_size));
    payload->TrySkip(static_cast<size_t>(body_size));
    if (tag == kSectionMeta) {
      if (!ParseMeta(&body, meta, error)) return false;
      if (!ValidateMeta(*meta, *staging, error)) return false;
      seen_meta = true;
    } else if (tag == kSectionModel) {
      if (!seen_meta) {
        SetError(error, "model section precedes meta section");
        return false;
      }
      std::string section_error;
      if (!staging->Load(&body, &section_error)) {
        SetError(error, "corrupt model section: " + section_error);
        return false;
      }
      if (!body.AtEnd()) {
        SetError(error, "model section has trailing bytes");
        return false;
      }
      seen_model = true;
    } else if (tag == kSectionStore) {
      if (!seen_meta) {
        SetError(error, "store section precedes meta section");
        return false;
      }
      std::string section_error;
      if (!staging_store->Load(&body, &section_error,
                               meta->embedding_dim)) {
        SetError(error, "corrupt store section: " + section_error);
        return false;
      }
      if (!body.AtEnd()) {
        SetError(error, "store section has trailing bytes");
        return false;
      }
      seen_store = true;
    }
    // Unknown tags are skipped: newer writers may append sections.
  }
  if (!seen_meta || !seen_model || !seen_store) {
    SetError(error, "incomplete checkpoint: missing section");
    return false;
  }
  return true;
}

// Legacy v1 layout: span | note | model | store, no framing or checksum.
bool LoadV1Body(util::BinaryReader* reader, models::MsrModel* staging,
                InterestStore* staging_store, CheckpointMetadata* metadata,
                std::string* error) {
  if (!reader->TryReadInt64(&metadata->trained_through_span) ||
      !reader->TryReadString(&metadata->note)) {
    SetError(error, "corrupt v1 header: " + reader->error());
    return false;
  }
  std::string section_error;
  if (!staging->Load(reader, &section_error)) {
    SetError(error, "corrupt v1 model state: " + section_error);
    return false;
  }
  if (!staging_store->Load(reader, &section_error,
                           staging->config().embedding_dim)) {
    SetError(error, "corrupt v1 store state: " + section_error);
    return false;
  }
  return true;
}

}  // namespace

bool SaveCheckpoint(const std::string& path, const models::MsrModel& model,
                    const InterestStore& store,
                    const CheckpointMetadata& metadata, std::string* error) {
  util::BinaryWriter meta_body;
  meta_body.WriteInt64(metadata.trained_through_span);
  meta_body.WriteString(metadata.note);
  meta_body.WriteString(models::ExtractorKindName(model.config().kind));
  meta_body.WriteInt64(model.config().embedding_dim);
  meta_body.WriteInt64(model.config().attention_dim);
  meta_body.WriteInt64(model.num_items());

  util::BinaryWriter model_body;
  model.Save(&model_body);
  util::BinaryWriter store_body;
  store.Save(&store_body);

  util::BinaryWriter payload;
  AppendSection(&payload, kSectionMeta, meta_body);
  AppendSection(&payload, kSectionModel, model_body);
  AppendSection(&payload, kSectionStore, store_body);

  util::BinaryWriter file;
  file.WriteString(kMagicV2);
  file.WriteInt64(static_cast<int64_t>(payload.buffer().size()));
  file.WriteBytes(payload.buffer().data(), payload.buffer().size());
  file.WriteInt64(static_cast<int64_t>(
      util::Crc32(payload.buffer().data(), payload.buffer().size())));
  return file.WriteToFileAtomic(path, error);
}

bool LoadCheckpoint(const std::string& path, models::MsrModel* model,
                    InterestStore* store, CheckpointMetadata* metadata,
                    std::string* error) {
  util::BinaryReader reader({});
  if (!util::BinaryReader::ReadFromFile(path, &reader)) {
    SetError(error, "cannot read " + path);
    return false;
  }
  std::string magic;
  if (!reader.TryReadString(&magic) ||
      (magic != kMagicV1 && magic != kMagicV2)) {
    SetError(error, "not an IMSR checkpoint: " + path);
    return false;
  }

  // All parsing goes into staging objects; the destination model/store are
  // only touched after the whole file has validated.
  models::MsrModel staging(model->config(), model->num_items(), /*seed=*/1);
  InterestStore staging_store;
  CheckpointMetadata loaded;

  if (magic == kMagicV1) {
    if (!LoadV1Body(&reader, &staging, &staging_store, &loaded, error)) {
      return false;
    }
  } else {
    int64_t payload_size = 0;
    if (!reader.TryReadInt64(&payload_size)) {
      SetError(error, "truncated checkpoint header: " + reader.error());
      return false;
    }
    if (payload_size < 0 || static_cast<uint64_t>(payload_size) +
                                    sizeof(int64_t) >
                                reader.remaining()) {
      SetError(error, "truncated checkpoint: payload of " +
                          std::to_string(payload_size) + " bytes, " +
                          std::to_string(reader.remaining()) + " remain");
      return false;
    }
    const uint32_t actual_crc =
        util::Crc32(reader.current(), static_cast<size_t>(payload_size));
    util::BinaryReader payload(std::vector<uint8_t>(
        reader.current(), reader.current() + payload_size));
    reader.TrySkip(static_cast<size_t>(payload_size));
    int64_t stored_crc = 0;
    if (!reader.TryReadInt64(&stored_crc)) {
      SetError(error, "truncated checkpoint: missing checksum");
      return false;
    }
    // Full 64-bit compare: the field is the CRC zero-extended, so a flip
    // in its upper bytes is corruption too.
    if (stored_crc != static_cast<int64_t>(actual_crc)) {
      SetError(error, "checksum mismatch: checkpoint is corrupt");
      return false;
    }
    CheckpointMeta meta;
    if (!LoadV2Payload(&payload, &staging, &staging_store, &meta, error)) {
      return false;
    }
    loaded = meta.metadata;
  }

  model->CopyStateFrom(staging);
  *store = std::move(staging_store);
  if (metadata != nullptr) *metadata = loaded;
  return true;
}

void RotateCheckpoints(const std::string& path, int keep) {
  if (keep <= 0) return;
  std::remove((path + "." + std::to_string(keep)).c_str());
  for (int i = keep; i >= 2; --i) {
    std::rename((path + "." + std::to_string(i - 1)).c_str(),
                (path + "." + std::to_string(i)).c_str());
  }
  std::rename(path.c_str(), (path + ".1").c_str());
}

}  // namespace imsr::core
