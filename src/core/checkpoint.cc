#include "core/checkpoint.h"

#include "util/serialization.h"

namespace imsr::core {
namespace {

constexpr char kMagic[] = "imsr-checkpoint-v1";

}  // namespace

bool SaveCheckpoint(const std::string& path, const models::MsrModel& model,
                    const InterestStore& store,
                    const CheckpointMetadata& metadata) {
  util::BinaryWriter writer;
  writer.WriteString(kMagic);
  writer.WriteInt64(metadata.trained_through_span);
  writer.WriteString(metadata.note);
  model.Save(&writer);
  store.Save(&writer);
  return writer.WriteToFile(path);
}

bool LoadCheckpoint(const std::string& path, models::MsrModel* model,
                    InterestStore* store, CheckpointMetadata* metadata,
                    std::string* error) {
  util::BinaryReader reader({});
  if (!util::BinaryReader::ReadFromFile(path, &reader)) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  if (reader.ReadString() != kMagic) {
    if (error != nullptr) *error = "not an IMSR checkpoint: " + path;
    return false;
  }
  CheckpointMetadata loaded;
  loaded.trained_through_span = reader.ReadInt64();
  loaded.note = reader.ReadString();
  model->Load(&reader);
  store->Load(&reader);
  if (metadata != nullptr) *metadata = loaded;
  return true;
}

}  // namespace imsr::core
