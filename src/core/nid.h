// New-interests detector (§IV-C): the per-item *puzzlement* measures how
// uniformly an item's assignment distribution spreads over the user's
// interests (Eq. 11–13); users whose average puzzlement passes the c1
// threshold (Eq. 14) receive new interest vectors.
//
// Scale stabilisation: kernels are computed on L2-normalised embeddings
// and interest vectors (cosine logits), keeping KL values inside the
// paper's published c1 range regardless of embedding magnitude (see
// DESIGN.md §1).
#ifndef IMSR_CORE_NID_H_
#define IMSR_CORE_NID_H_

#include <vector>

#include "nn/tensor.h"

namespace imsr::core {

struct NidConfig {
  // Eq. 14's sensitivity threshold. The detector fires when the mean KL
  // divergence from the uniform assignment falls below c1 (equivalently,
  // mean puzzlement > -c1; see the sign-convention note in DESIGN.md).
  double c1 = 0.06;
};

// p(h_k | e_i) of Eq. 11 (softmax of cosine logits over interests).
std::vector<double> AssignmentDistribution(const nn::Tensor& item_embedding,
                                           const nn::Tensor& interests);

// KL(uniform || p) of Eq. 12, always >= 0.
double AssignmentKl(const nn::Tensor& item_embedding,
                    const nn::Tensor& interests);

// Puzzlement of Eq. 13 == -AssignmentKl: <= 0, equal to 0 when the item is
// maximally puzzled (uniform assignment).
double ItemPuzzlement(const nn::Tensor& item_embedding,
                      const nn::Tensor& interests);

// Mean KL over the rows of `item_embeddings` (n x d).
double MeanAssignmentKl(const nn::Tensor& item_embeddings,
                        const nn::Tensor& interests);

// Eq. 14: true when the user's new interactions are collectively puzzled
// and new interest capsules should be created.
bool DetectNewInterests(const nn::Tensor& item_embeddings,
                        const nn::Tensor& interests,
                        const NidConfig& config);

// Hard assignment census: how many rows of `item_embeddings` (n x d) have
// interest k as their cosine-argmax, for every k. Used by the trainer's
// evidence-gated interest refresh.
std::vector<int> CountAssignedItems(const nn::Tensor& item_embeddings,
                                    const nn::Tensor& interests);

}  // namespace imsr::core

#endif  // IMSR_CORE_NID_H_
