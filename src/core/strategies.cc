#include "core/strategies.h"

#include "baselines/ader.h"
#include "baselines/sml.h"

namespace imsr::core {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFullRetrain:
      return "FR";
    case StrategyKind::kFineTune:
      return "FT";
    case StrategyKind::kImsr:
      return "IMSR";
    case StrategyKind::kImsrNoExpansion:
      return "IMSR w/o NID&PIT";
    case StrategyKind::kImsrNoEir:
      return "IMSR w/o EIR";
    case StrategyKind::kSml:
      return "SML";
    case StrategyKind::kAder:
      return "ADER";
  }
  return "?";
}

StrategyKind StrategyKindFromName(const std::string& name) {
  if (name == "FR" || name == "fr") return StrategyKind::kFullRetrain;
  if (name == "FT" || name == "ft") return StrategyKind::kFineTune;
  if (name == "IMSR" || name == "imsr") return StrategyKind::kImsr;
  if (name == "SML" || name == "sml") return StrategyKind::kSml;
  if (name == "ADER" || name == "ader") return StrategyKind::kAder;
  IMSR_CHECK(false) << "unknown strategy '" << name << "'";
  std::abort();
}

std::unique_ptr<LearningStrategy> LearningStrategy::Create(
    const StrategyConfig& config, models::MsrModel* model,
    InterestStore* store) {
  switch (config.kind) {
    case StrategyKind::kFineTune: {
      TrainConfig train = config.train;
      train.eir.kind = RetentionKind::kNone;
      train.enable_expansion = false;
      train.persist_interests = false;
      return std::make_unique<FineTuneFamilyStrategy>(train, model, store);
    }
    case StrategyKind::kImsr:
      return std::make_unique<FineTuneFamilyStrategy>(config.train, model,
                                                      store);
    case StrategyKind::kImsrNoExpansion: {
      TrainConfig train = config.train;
      train.enable_expansion = false;
      return std::make_unique<FineTuneFamilyStrategy>(train, model, store);
    }
    case StrategyKind::kImsrNoEir: {
      // The existing-interests retainer comprises the distillation loss
      // *and* the evidence-gated refresh (both implement §IV-B's
      // retention); removing EIR removes both. The DIR/KD1-3 ablations
      // replace only the loss.
      TrainConfig train = config.train;
      train.eir.kind = RetentionKind::kNone;
      train.min_evidence_items = 0;
      return std::make_unique<FineTuneFamilyStrategy>(train, model, store);
    }
    case StrategyKind::kFullRetrain:
      return std::make_unique<FullRetrainStrategy>(config, model, store);
    case StrategyKind::kSml:
      return baselines::CreateSmlStrategy(config, model, store);
    case StrategyKind::kAder:
      return baselines::CreateAderStrategy(config, model, store);
  }
  IMSR_CHECK(false) << "unreachable strategy kind";
  std::abort();
}

FineTuneFamilyStrategy::FineTuneFamilyStrategy(const TrainConfig& config,
                                               models::MsrModel* model,
                                               InterestStore* store)
    : LearningStrategy(model, store), trainer_(model, store, config) {}

void FineTuneFamilyStrategy::Pretrain(const data::Dataset& dataset) {
  trainer_.Pretrain(dataset);
}

void FineTuneFamilyStrategy::TrainIncrementalSpan(
    const data::Dataset& dataset, int span) {
  trainer_.TrainSpan(dataset, span);
}

FullRetrainStrategy::FullRetrainStrategy(const StrategyConfig& config,
                                         models::MsrModel* model,
                                         InterestStore* store)
    : LearningStrategy(model, store), config_(config) {
  // FR never expands or distils; it simply has more capacity and data.
  config_.train.eir.kind = RetentionKind::kNone;
  config_.train.enable_expansion = false;
  config_.train.persist_interests = false;
  config_.train.initial_interests = config.fr_initial_interests;
}

void FullRetrainStrategy::Pretrain(const data::Dataset& dataset) {
  RetrainFromScratch(dataset, /*up_to_span=*/0);
}

void FullRetrainStrategy::TrainIncrementalSpan(const data::Dataset& dataset,
                                               int span) {
  RetrainFromScratch(dataset, span);
}

void FullRetrainStrategy::RetrainFromScratch(const data::Dataset& dataset,
                                             int up_to_span) {
  ++generation_;
  model_->Reset(config_.train.seed + static_cast<uint64_t>(generation_) *
                                         7919ULL);
  store_->Clear();

  ImsrTrainer trainer(model_, store_, config_.train);
  for (int span = 0; span <= up_to_span; ++span) {
    trainer.EnsureUserState(dataset, span);
  }

  const std::vector<data::TrainingSample> samples =
      data::BuildCumulativeSamples(dataset, up_to_span,
                                   config_.train.max_history);
  const int epochs =
      config_.fr_epochs > 0 ? config_.fr_epochs
                            : config_.train.pretrain_epochs;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    trainer.TrainEpoch(samples, /*teacher=*/nullptr);
  }

  // Interests from the full history up to `up_to_span`.
  for (data::UserId user = 0; user < dataset.num_users(); ++user) {
    if (!store_->Has(user)) continue;
    std::vector<data::ItemId> items;
    for (int span = 0; span <= up_to_span; ++span) {
      const data::UserSpanData& span_data = dataset.user_span(user, span);
      items.insert(items.end(), span_data.all.begin(), span_data.all.end());
    }
    if (items.empty()) continue;
    if (static_cast<int>(items.size()) > config_.train.max_history) {
      items.erase(items.begin(),
                  items.end() - config_.train.max_history);
    }
    store_->SetInterests(
        user, model_->ForwardInterestsNoGrad(items, store_->Interests(user),
                                             user));
  }
}

}  // namespace imsr::core
