// Interests expansion (Algorithm 1): detect puzzled users (NID), allocate
// delta-K fresh interest vectors, re-extract, project the new vectors onto
// the orthogonal complement of the existing interests and trim trivial
// ones (PIT).
#ifndef IMSR_CORE_INTERESTS_EXPANSION_H_
#define IMSR_CORE_INTERESTS_EXPANSION_H_

#include "core/interest_store.h"
#include "core/nid.h"
#include "core/pit.h"
#include "data/dataset.h"
#include "models/msr_model.h"
#include "nn/optim.h"

namespace imsr::core {

struct ExpansionConfig {
  NidConfig nid;
  PitConfig pit;
  int delta_k = 3;        // new interest vectors allocated per detection
  int max_interests = 16; // hard cap on K_u
  int min_span_items = 3; // puzzlement needs a few observations
};

struct ExpansionOutcome {
  int users_considered = 0;
  int users_expanded = 0;   // NID fired
  int interests_added = 0;  // new vectors surviving PIT
  int interests_trimmed = 0;
};

// Runs Algorithm 1 for one user given their new-span interactions
// `items` (the store must already hold an entry for the user; `span`
// only tags newly appended interests with their birth span). Mutates
// `outcome` counters in place. The streaming path calls this directly
// per micro-span; the batch path below wraps it over a whole span.
void ExpandUserInterests(models::MsrModel* model,
                         InterestStore* store,
                         data::UserId user,
                         const std::vector<data::ItemId>& items,
                         int span,
                         const ExpansionConfig& config,
                         util::Rng& rng,
                         nn::Optimizer* optimizer,
                         ExpansionOutcome* outcome);

// Runs Algorithm 1 over every active user of `span`. The store must
// already contain an entry for each active user. `optimizer` (nullable)
// keeps per-user extractor parameters registered as they resize.
ExpansionOutcome RunInterestsExpansion(models::MsrModel* model,
                                       InterestStore* store,
                                       const data::Dataset& dataset,
                                       int span,
                                       const ExpansionConfig& config,
                                       util::Rng& rng,
                                       nn::Optimizer* optimizer);

}  // namespace imsr::core

#endif  // IMSR_CORE_INTERESTS_EXPANSION_H_
