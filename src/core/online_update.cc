#include "core/online_update.h"

#include <cmath>

#include "util/check.h"
#include "util/math_util.h"

namespace imsr::core {

OnlineUpdater::OnlineUpdater(InterestStore* store,
                             const models::EmbeddingTable* table,
                             const OnlineUpdateConfig& config)
    : store_(store), table_(table), config_(config) {
  IMSR_CHECK(store != nullptr);
  IMSR_CHECK(table != nullptr);
  IMSR_CHECK_GE(config.rate, 0.0f);
  IMSR_CHECK_GT(config.temperature, 0.0f);
}

void OnlineUpdater::Absorb(data::UserId user, data::ItemId item) {
  if (config_.rate == 0.0f) return;
  if (!store_->Has(user)) return;
  const nn::Tensor item_embedding = table_->RowNoGrad(item);
  const float item_norm = nn::L2NormFlat(item_embedding);
  if (item_norm < 1e-8f) return;

  nn::Tensor interests = store_->Interests(user);
  const int64_t k = interests.size(0);
  const int64_t dim = interests.size(1);

  // Soft assignment over cosine similarities.
  std::vector<double> logits(static_cast<size_t>(k), 0.0);
  std::vector<float> norms(static_cast<size_t>(k), 0.0f);
  for (int64_t row = 0; row < k; ++row) {
    const nn::Tensor h = interests.Row(row);
    norms[static_cast<size_t>(row)] = nn::L2NormFlat(h);
    const float denom = norms[static_cast<size_t>(row)] * item_norm;
    const double cosine =
        denom > 1e-12f ? nn::DotFlat(h, item_embedding) / denom : 0.0;
    logits[static_cast<size_t>(row)] = cosine / config_.temperature;
  }
  util::SoftmaxInPlace(logits);

  // Norm-preserving pull: each interest moves towards the item direction
  // scaled to the interest's own magnitude, so squashed-capsule and
  // attention interests keep their scale.
  for (int64_t row = 0; row < k; ++row) {
    const float weight =
        config_.rate * static_cast<float>(logits[static_cast<size_t>(row)]);
    if (weight <= 0.0f) continue;
    const float target_scale = norms[static_cast<size_t>(row)] / item_norm;
    for (int64_t j = 0; j < dim; ++j) {
      const float pulled = item_embedding.at(j) * target_scale;
      interests.at(row, j) =
          (1.0f - weight) * interests.at(row, j) + weight * pulled;
    }
  }
  store_->SetInterests(user, std::move(interests));
  ++updates_applied_;
}

void OnlineUpdater::AbsorbSequence(
    data::UserId user, const std::vector<data::ItemId>& items) {
  for (data::ItemId item : items) Absorb(user, item);
}

}  // namespace imsr::core
