// Per-user interest vectors persisting across time spans — the {H_u^t}
// state of Algorithms 1 and 2, plus the creation-span metadata used by the
// case-study analyses (Fig. 7).
#ifndef IMSR_CORE_INTEREST_STORE_H_
#define IMSR_CORE_INTEREST_STORE_H_

#include <unordered_map>
#include <vector>

#include "data/interaction.h"
#include "nn/tensor.h"
#include "util/rng.h"
#include "util/serialization.h"

namespace imsr::core {

// Flat, read-optimised export of every user's interest rows: the storage
// a ServingSnapshot is built from (see src/serve/snapshot.h). `users` is
// ascending; user i's (counts[i] x dim) rows live at data[row_begin[i] *
// dim]. No Tensor/Var machinery — just contiguous floats.
struct PackedInterests {
  std::vector<data::UserId> users;  // ascending
  std::vector<int64_t> row_begin;   // parallel to users, in rows
  std::vector<int32_t> counts;      // parallel to users (K_u)
  std::vector<float> data;          // sum(K_u) x dim, row-major
  int64_t dim = 0;
};

class InterestStore {
 public:
  bool Has(data::UserId user) const;
  int64_t NumInterests(data::UserId user) const;

  // Mutation stamp drawn from a process-wide counter: every mutating
  // call (Initialize / SetInterests / Append / Keep / Clear / Load)
  // re-stamps it with a fresh, globally unique value, so equal nonzero
  // revisions imply the SAME store with NO intervening mutation — the
  // check the timed-republish fast path (serve::BuildSnapshotShared)
  // relies on to skip the full 100s-of-MB ExportPacked. 0 means
  // never-mutated (necessarily empty).
  uint64_t revision() const { return revision_; }

  // The user's interest matrix (K x d); aborts when absent.
  const nn::Tensor& Interests(data::UserId user) const;
  // Span at which each interest row was created (parallel to rows).
  const std::vector<int>& BirthSpans(data::UserId user) const;

  // Creates K0 interests drawn from N(0, I) (Algorithm 2, lines 2-6).
  void Initialize(data::UserId user, int64_t k0, int64_t dim, int span,
                  util::Rng& rng);

  // Replaces the user's interest values; the row count may change only via
  // Append/Keep, so `interests` must keep K rows.
  void SetInterests(data::UserId user, nn::Tensor interests);

  // Appends `rows` new interest vectors created at `span`.
  void Append(data::UserId user, const nn::Tensor& rows, int span);

  // Keeps only the rows at `kept` indices (ascending), dropping the rest —
  // the trimming step of Algorithm 1.
  void Keep(data::UserId user, const std::vector<int64_t>& kept);

  // Removes the user entirely (full retraining reinitialises).
  void Clear();

  std::vector<data::UserId> Users() const;

  // Copies every user's interest rows into flat packed storage (users
  // ascending, so the export is deterministic). Empty store -> empty
  // export with dim 0.
  PackedInterests ExportPacked() const;

  double AverageInterests() const;
  size_t num_users() const { return entries_.size(); }

  void Save(util::BinaryWriter* writer) const;
  // Fallible restore; returns false with a description on corrupt input,
  // leaving the store unchanged (all-or-nothing). When `expected_dim` is
  // positive, every user's interest width must match it.
  bool Load(util::BinaryReader* reader, std::string* error,
            int64_t expected_dim = -1);

 private:
  struct Entry {
    nn::Tensor interests;          // (K x d)
    std::vector<int> birth_spans;  // size K
  };

  // Re-stamps revision_ from the process-wide counter; called by every
  // mutating method.
  void Touch();

  std::unordered_map<data::UserId, Entry> entries_;
  uint64_t revision_ = 0;
};

}  // namespace imsr::core

#endif  // IMSR_CORE_INTEREST_STORE_H_
