// BoundedQueue — the process's one blocking MPMC queue, shared by the
// streaming pipeline (stream::BoundedEventQueue) and the server's
// per-shard request queues (serve::ShardSet).
//
// Contract: Push() blocks while the queue is full (the producer slows to
// the consumer's pace instead of growing an unbounded backlog), TryPush()
// rejects instead of waiting (the admission-control primitive: the caller
// turns the rejection into an explicit overload response), Pop() blocks
// while the queue is empty, and Close() wakes everyone — pushes after
// Close are rejected and pops drain whatever is still buffered before
// reporting end-of-stream. Depth statistics (high-water mark, number of
// pushes that had to wait) feed backpressure accounting: a queue pinned
// at capacity means the consumer is falling behind arrivals.
#ifndef IMSR_UTIL_BOUNDED_QUEUE_H_
#define IMSR_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace imsr::util {

// Optional obs wiring for a queue instance. Metric names must be string
// literals (they are registered once in the constructor); nullptr leaves
// the corresponding metric unrecorded. Instances of the same subsystem
// share a name and therefore aggregate into one metric.
struct BoundedQueueMetrics {
  // Histogram of the depth after each push (default latency bounds keep
  // parity with the original stream queue metric).
  const char* depth_histogram = nullptr;
  // Counter of pushes that found the queue full and had to wait.
  const char* blocked_counter = nullptr;
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity, BoundedQueueMetrics metrics = {})
      : capacity_(capacity) {
    IMSR_CHECK_GT(capacity, 0u);
#if !defined(IMSR_OBS_DISABLED)
    if (metrics.depth_histogram != nullptr) {
      depth_histogram_ =
          &obs::Registry().GetHistogram(metrics.depth_histogram);
    }
    if (metrics.blocked_counter != nullptr) {
      blocked_counter_ = &obs::Registry().GetCounter(metrics.blocked_counter);
    }
#else
    (void)metrics;
#endif
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks until space is available; returns false (dropping the item)
  // iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.size() >= capacity_ && !closed_) {
      ++blocked_pushes_;
      if (blocked_counter_ != nullptr) blocked_counter_->Add(1);
      not_full_.wait(lock, [this] {
        return items_.size() < capacity_ || closed_;
      });
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    RecordDepthLocked();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking variant; false when full or closed. This is the
  // admission-control path: a false return is the caller's cue to send
  // an explicit overload rejection instead of queueing unboundedly.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      RecordDepthLocked();
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and fully
  // drained (then returns false).
  bool Pop(T* item) {
    IMSR_CHECK(item != nullptr);
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking pop; false when nothing is buffered.
  bool TryPop(T* item) {
    IMSR_CHECK(item != nullptr);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return false;
      *item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  // Rejects further pushes; pending items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  // Deepest the queue ever got (backpressure diagnostics).
  size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
  }

  // Pushes that found the queue full and had to wait.
  uint64_t blocked_pushes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return blocked_pushes_;
  }

 private:
  void RecordDepthLocked() {
    if (items_.size() > max_depth_) max_depth_ = items_.size();
    if (depth_histogram_ != nullptr) {
      depth_histogram_->Record(static_cast<double>(items_.size()));
    }
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  size_t max_depth_ = 0;
  uint64_t blocked_pushes_ = 0;
  obs::Histogram* depth_histogram_ = nullptr;
  obs::Counter* blocked_counter_ = nullptr;
};

}  // namespace imsr::util

#endif  // IMSR_UTIL_BOUNDED_QUEUE_H_
