// Deterministic random number generation. All stochastic components of the
// library draw from an explicitly passed Rng so experiments are replayable
// from a single seed.
#ifndef IMSR_UTIL_RNG_H_
#define IMSR_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace imsr::util {

// SplitMix64-seeded xoshiro256** generator. Small, fast, and reproducible
// across platforms (unlike std::mt19937 + std::normal_distribution whose
// stream is implementation-defined for floating-point draws).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second draw).
  double NextGaussian();

  // Normal with the given mean/stddev.
  double Gaussian(double mean, double stddev);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t IntInRange(int64_t lo, int64_t hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Samples an index from unnormalised non-negative weights. Requires a
  // positive total weight.
  size_t Categorical(const std::vector<double>& weights);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  // Derives an independent generator (for per-user / per-worker streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace imsr::util

#endif  // IMSR_UTIL_RNG_H_
