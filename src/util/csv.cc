#include "util/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace imsr::util {
namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  IMSR_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  IMSR_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::ToPrettyString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << CsvEscape(row[c]);
    }
    out << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToCsv();
  return static_cast<bool>(out);
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string FormatPercent(double ratio, int digits) {
  return FormatDouble(ratio * 100.0, digits);
}

}  // namespace imsr::util
