// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to checksum checkpoint
// payloads so truncation and bit-flips are detected before deserialization.
#ifndef IMSR_UTIL_CRC32_H_
#define IMSR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace imsr::util {

// CRC of `size` bytes at `data`. Pass a previous result as `seed` to
// checksum a stream incrementally; the default seed starts a fresh CRC.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace imsr::util

#endif  // IMSR_UTIL_CRC32_H_
