#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace imsr::util {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(s);
}

uint64_t Rng::NextUint64() {
  // xoshiro256** step.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

uint64_t Rng::NextBelow(uint64_t n) {
  IMSR_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t value = NextUint64();
  while (value >= limit) value = NextUint64();
  return value % n;
}

int64_t Rng::IntInRange(int64_t lo, int64_t hi) {
  IMSR_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    IMSR_CHECK_GE(w, 0.0);
    total += w;
  }
  IMSR_CHECK_GT(total, 0.0) << "Categorical needs a positive total weight";
  double draw = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last bin.
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace imsr::util
