// Minimal data-parallel helper: splits an index range over a fixed number
// of threads. Used by the evaluator for full-corpus ranking (each user's
// ranking is independent). Backed by the persistent util::ThreadPool
// (see thread_pool.h) — no threads are spawned per call.
#ifndef IMSR_UTIL_PARALLEL_H_
#define IMSR_UTIL_PARALLEL_H_

#include <cstdint>

#include "util/range_fn.h"

namespace imsr::util {

// Invokes fn(begin, end) on at most `threads` contiguous chunks of
// [0, count), executed on the process-wide pool. threads <= 0 means "use
// the pool's configured size"; threads == 1 (or count == 1) runs inline.
// fn must be safe to call concurrently on disjoint ranges.
void ParallelChunks(int64_t count, int threads, RangeFn fn);

// Hardware concurrency, at least 1.
int DefaultThreadCount();

}  // namespace imsr::util

#endif  // IMSR_UTIL_PARALLEL_H_
