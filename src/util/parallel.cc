#include "util/parallel.h"

#include <algorithm>
#include <thread>

#include "util/thread_pool.h"

namespace imsr::util {

void ParallelChunks(int64_t count, int threads, RangeFn fn) {
  if (count <= 0) return;
  if (threads <= 0) threads = GlobalThreadCount();
  const int workers = std::max(
      1, std::min<int>(threads, static_cast<int>(count)));
  if (workers == 1) {
    fn(0, count);
    return;
  }
  // Same chunk boundaries as the historical per-call-thread version —
  // ceil(count / workers)-sized contiguous ranges — but executed on the
  // persistent process-wide pool instead of freshly spawned threads.
  const int64_t chunk = (count + workers - 1) / workers;
  GlobalPool().ParallelFor(count, chunk, fn);
}

int DefaultThreadCount() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

}  // namespace imsr::util
