#include "util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace imsr::util {

void ParallelChunks(int64_t count, int threads,
                    const std::function<void(int64_t, int64_t)>& fn) {
  if (count <= 0) return;
  const int workers = std::max(
      1, std::min<int>(threads, static_cast<int>(count)));
  if (workers == 1) {
    fn(0, count);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers - 1));
  const int64_t chunk = (count + workers - 1) / workers;
  for (int w = 1; w < workers; ++w) {
    const int64_t begin = w * chunk;
    const int64_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  fn(0, std::min(count, chunk));
  for (std::thread& worker : pool) worker.join();
}

int DefaultThreadCount() {
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

}  // namespace imsr::util
