// Non-owning callable view with the fixed signature void(int64_t, int64_t)
// used by every data-parallel loop in the codebase. Replaces
// const std::function& at those boundaries: constructing a RangeFn from a
// lambda is two stores (context pointer + invoke pointer), never a heap
// allocation, where std::function may allocate for any capture larger
// than its small-buffer slot — a per-call heap hit even on the inline
// fast path of a hot kernel.
//
// Lifetime: a RangeFn borrows the callable it was built from. That is
// safe for ParallelFor/ParallelChunks because both block until every
// chunk has run; do not store a RangeFn beyond the call that received it.
#ifndef IMSR_UTIL_RANGE_FN_H_
#define IMSR_UTIL_RANGE_FN_H_

#include <cstdint>
#include <type_traits>

namespace imsr::util {

class RangeFn {
 public:
  RangeFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, RangeFn> &&
                std::is_invocable_v<const F&, int64_t, int64_t>>>
  RangeFn(const F& fn)  // NOLINT: implicit by design (call-site ergonomics)
      : context_(const_cast<void*>(static_cast<const void*>(&fn))),
        invoke_([](void* context, int64_t begin, int64_t end) {
          (*static_cast<const F*>(context))(begin, end);
        }) {}

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()(int64_t begin, int64_t end) const {
    invoke_(context_, begin, end);
  }

 private:
  void* context_ = nullptr;
  void (*invoke_)(void*, int64_t, int64_t) = nullptr;
};

}  // namespace imsr::util

#endif  // IMSR_UTIL_RANGE_FN_H_
