#include "util/thread_pool.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/check.h"
#include "util/env.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

// CMake plumbs -DIMSR_THREADS=<n> through to this definition; 0 defers to
// the IMSR_THREADS env var and then hardware concurrency.
#ifndef IMSR_DEFAULT_THREADS
#define IMSR_DEFAULT_THREADS 0
#endif

namespace imsr::util {
namespace {

// Depth of ParallelFor frames on this thread. Nested regions (a kernel
// calling ParallelFor from inside an outer ParallelFor body) run inline:
// the pool's workers are already busy with the outer region, and blocking
// on them from a worker would deadlock.
thread_local int g_parallel_depth = 0;

int ResolveConfiguredThreads() {
  // Strict full-token parse (util/env.h): IMSR_THREADS="4x" or "abc" used
  // to slip through std::atoi as 4 / silent fallthrough; now it warns and
  // defers to the compile-time / hardware default.
  const int64_t parsed = EnvInt("IMSR_THREADS", /*default_value=*/0,
                                /*min_value=*/1);
  if (parsed > 0) return static_cast<int>(parsed);
  if (IMSR_DEFAULT_THREADS > 0) return IMSR_DEFAULT_THREADS;
  return DefaultThreadCount();
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(1, threads) - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Dispatch> dispatch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || (dispatch_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      dispatch = dispatch_;
      seen_generation = generation_;
    }
    RunChunks(*dispatch);
  }
}

void ThreadPool::RunChunks(Dispatch& dispatch) {
  for (;;) {
    const int64_t index =
        dispatch.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (index >= dispatch.num_chunks) return;
    // After a chunk threw, remaining chunks are claimed but skipped so
    // done_chunks still reaches num_chunks and the caller wakes up.
    if (!dispatch.has_error.load(std::memory_order_relaxed)) {
      const int64_t begin = index * dispatch.grain;
      const int64_t end = std::min(dispatch.count, begin + dispatch.grain);
      IMSR_OBS_ONLY(Stopwatch task_timer;)
      ++g_parallel_depth;
      try {
        dispatch.fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(dispatch.error_mutex);
        if (!dispatch.error) dispatch.error = std::current_exception();
        dispatch.has_error.store(true, std::memory_order_relaxed);
      }
      --g_parallel_depth;
      IMSR_HISTOGRAM_RECORD("pool/task_latency_ms",
                            task_timer.ElapsedMillis());
    }
    const int64_t done = dispatch.done_chunks.fetch_add(1) + 1;
    if (done == dispatch.num_chunks) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t count, int64_t grain, RangeFn fn) {
  if (count <= 0) return;
  if (grain <= 0) {
    grain = std::max<int64_t>(1, count / (4 * thread_count()));
  }
  const int64_t num_chunks = (count + grain - 1) / grain;
  if (workers_.empty() || num_chunks <= 1 || g_parallel_depth > 0) {
    ++g_parallel_depth;
    try {
      fn(0, count);
    } catch (...) {
      --g_parallel_depth;
      throw;
    }
    --g_parallel_depth;
    return;
  }

  // One region at a time; a second external caller parks here and keeps
  // determinism (its own chunk boundaries are unaffected). Pool metrics
  // are recorded only on this dispatched path — the inline fast path
  // above stays instrumentation-free so single-thread kernel latency is
  // unperturbed.
  std::lock_guard<std::mutex> caller_lock(caller_mutex_);
  IMSR_COUNTER_ADD("pool/regions", 1);
  IMSR_GAUGE_SET("pool/queue_depth", static_cast<double>(num_chunks));
  IMSR_OBS_ONLY(Stopwatch region_timer;)
  auto dispatch = std::make_shared<Dispatch>();
  dispatch->fn = fn;
  dispatch->count = count;
  dispatch->grain = grain;
  dispatch->num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dispatch_ = dispatch;
    ++generation_;
  }
  wake_cv_.notify_all();
  RunChunks(*dispatch);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return dispatch->done_chunks.load() == dispatch->num_chunks;
    });
    dispatch_ = nullptr;
  }
  IMSR_HISTOGRAM_RECORD("pool/region_latency_ms",
                        region_timer.ElapsedMillis());
  IMSR_GAUGE_SET("pool/queue_depth", 0.0);
  if (dispatch->error) std::rethrow_exception(dispatch->error);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;       // guarded by g_pool_mutex
int g_thread_count = 0;                   // 0 = not yet resolved

}  // namespace

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) {
    if (g_thread_count <= 0) g_thread_count = ResolveConfiguredThreads();
    g_pool = std::make_unique<ThreadPool>(g_thread_count);
  }
  return *g_pool;
}

void SetGlobalThreadCount(int threads) {
  IMSR_CHECK_GE(threads, 1);
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool && g_thread_count == threads) return;
  g_pool.reset();  // joins idle workers; no region may be in flight
  g_thread_count = threads;
  g_pool = std::make_unique<ThreadPool>(threads);
}

int GlobalThreadCount() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_thread_count <= 0) g_thread_count = ResolveConfiguredThreads();
  return g_thread_count;
}

void ApplyThreadFlag(const Flags& flags) {
  const int64_t threads = flags.GetInt("threads", 0);
  if (threads > 0) {
    SetGlobalThreadCount(static_cast<int>(threads));
  }
}

}  // namespace imsr::util
