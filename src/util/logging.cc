#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace imsr::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

}  // namespace imsr::util
