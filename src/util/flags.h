// Tiny --key=value command-line flag parser for the bench and example
// binaries. Not a general-purpose flag library; just enough to override
// experiment scale and hyperparameters from the shell.
#ifndef IMSR_UTIL_FLAGS_H_
#define IMSR_UTIL_FLAGS_H_

#include <map>
#include <string>

namespace imsr::util {

class Flags {
 public:
  // Parses argv entries of the form --name=value or --name (value "true").
  // Unrecognised positional arguments abort with a usage message.
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace imsr::util

#endif  // IMSR_UTIL_FLAGS_H_
