// Command-line flag parsing, two layers:
//
//  * Flags — the original tiny --key=value map. Tokens are parsed
//    permissively (any name is accepted); typed getters validate values
//    lazily. Bench and example binaries keep using this. The constructor
//    aborts on a malformed token; TryParse is the fallible variant.
//
//  * FlagSet — a declarative registry for the long-lived tools
//    (imsr_cli, imsr_serve, imsr_loadgen): flags are registered up front
//    with a type, default and help line, Parse() is fallible full-token
//    parsing (a malformed value or an unknown flag becomes a usage error
//    with a nearest-name suggestion, never an abort), --help / -h is
//    recognised, and HelpText() renders the registered table. Typed
//    getters return the registered default when a flag was not given;
//    reading an unregistered name is a programmer error (IMSR_CHECK).
#ifndef IMSR_UTIL_FLAGS_H_
#define IMSR_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace imsr::util {

class Flags {
 public:
  Flags() = default;
  // Parses argv entries of the form --name=value or --name (value "true").
  // Unrecognised positional arguments abort with a usage message.
  Flags(int argc, char** argv);
  // Wraps an already-parsed name -> value map (the FlagSet bridge).
  explicit Flags(std::map<std::string, std::string> values);

  // Fallible token parse over argv[0..argc): returns false and fills
  // `error` on a token that is not --name[=value], instead of aborting.
  static bool TryParse(int argc, char** argv, Flags* flags,
                       std::string* error);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

// Shared fallible value parsers (used by Flags, FlagSet and tools that
// parse flag-shaped tokens themselves). Full-token: trailing garbage is
// an error. On failure they fill `error` with the message the CLI tests
// assert on ("flag --name expects an integer, got '...'").
bool ParseFlagInt(const std::string& name, const std::string& text,
                  int64_t* out, std::string* error);
bool ParseFlagDouble(const std::string& name, const std::string& text,
                     double* out, std::string* error);
bool ParseFlagBool(const std::string& name, const std::string& text,
                   bool* out, std::string* error);

// Nearest registered name within a small edit distance, or "" when
// nothing is close enough (powers "did you mean --x?" suggestions).
std::string SuggestFlagName(const std::string& name,
                            const std::vector<std::string>& known);

class FlagSet {
 public:
  // `program` and `synopsis` head the generated help text, e.g.
  // FlagSet("imsr_serve", "long-lived sharded recommendation server").
  FlagSet(std::string program, std::string synopsis);

  // Registration. Duplicate names abort (programmer error). The help
  // line should not repeat the default; HelpText() appends it.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  // Fallible full-token parse of argv[0..argc). On failure fills `error`
  // with one of:
  //   "expected --name=value argument, got '...'"   (positional token)
  //   "unknown flag --x (did you mean --y?)"        (typo)
  //   "flag --x expects an integer, got '...'"      (bad value)
  // --help / -h sets help_requested() and keeps parsing (so
  // `tool --help` never errors on the flags it would reject otherwise).
  bool Parse(int argc, char** argv, std::string* error);

  bool help_requested() const { return help_requested_; }
  // usage line + synopsis + one aligned row per registered flag.
  std::string HelpText() const;

  // Typed getters (valid after Parse). The flag must be registered with
  // the matching type; absent flags return the registered default.
  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Map view over the parsed raw values, for helpers that predate
  // FlagSet (obs::ObsOptionsFromFlags, util::ApplyThreadFlag).
  const Flags& flags() const { return view_; }

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Spec {
    std::string name;
    Type type = Type::kString;
    std::string help;
    std::string default_text;  // rendered for HelpText at registration
    // Registered default and (when set) parsed value.
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    bool set = false;
  };

  const Spec* Find(const std::string& name) const;
  Spec* Register(const std::string& name, Type type,
                 const std::string& help);

  std::string program_;
  std::string synopsis_;
  std::vector<Spec> specs_;               // registration order (help)
  std::map<std::string, size_t> index_;   // name -> specs_ slot
  bool help_requested_ = false;
  Flags view_;
};

}  // namespace imsr::util

#endif  // IMSR_UTIL_FLAGS_H_
