#include "util/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <utility>

#include "obs/obs.h"
#include "util/env.h"

namespace imsr::util {
namespace {

// Capacity classes are powers of two from 2^kMinClassLog floats (256 B)
// to 2^kMaxClassLog floats (64 MB). Requests above the range bypass the
// pool entirely; requests below it round up to the smallest class.
constexpr int kMinClassLog = 6;
constexpr int kMaxClassLog = 24;
constexpr int kNumClasses = kMaxClassLog - kMinClassLog + 1;
// Caps keep a pathological workload from hoarding memory: at most this
// many cached buffers per class, and at most this many cached bytes per
// thread overall. The count cap must exceed a training step's peak live
// tensor count in any one class — a batch graph's teardown releases
// every buffer of the step in one wave, and a dropped buffer is a heap
// miss on the next step — so it is set generously and the byte cap does
// the real governing (it alone limits the large classes: 4 x 64 MB
// buffers already saturate it).
constexpr size_t kMaxBuffersPerClass = 8192;
constexpr uint64_t kMaxCachedBytesPerThread = 256ull << 20;

constexpr size_t ClassFloats(int cls) {
  return size_t{1} << (kMinClassLog + cls);
}

// Smallest class whose capacity is >= n floats, or -1 when out of range.
int ClassForRequest(size_t n) {
  for (int cls = 0; cls < kNumClasses; ++cls) {
    if (ClassFloats(cls) >= n) return cls;
  }
  return -1;
}

// Largest class whose capacity is <= the buffer's capacity, so a cached
// buffer always satisfies any request of its class without reallocating.
// -1 when the capacity is below the smallest class.
int ClassForCapacity(size_t capacity) {
  for (int cls = kNumClasses - 1; cls >= 0; --cls) {
    if (ClassFloats(cls) <= capacity) return cls;
  }
  return -1;
}

std::atomic<bool>& EnabledFlag() {
  // Shared on/off env semantics (util/env.h): IMSR_POOL=off|0|false|no
  // disables, garbage warns and keeps the default (enabled).
  static std::atomic<bool> enabled{
      EnvEnabled("IMSR_POOL", /*default_value=*/true)};
  return enabled;
}

// Set when the thread's pool has been destroyed (thread exit). A plain
// bool is trivially destructible, so it stays readable while later
// thread_local destructors (e.g. scratch Tensors) release their buffers.
thread_local bool t_pool_dead = false;

class Pool {
 public:
  ~Pool() {
    t_pool_dead = true;
  }

  std::vector<float> Acquire(size_t n, int cls) {
    auto& list = free_lists_[cls];
    if (list.empty()) {
      ++stats_.misses;
      IMSR_COUNTER_ADD("memory/pool_misses", 1);
      std::vector<float> buffer;
      buffer.reserve(ClassFloats(cls));
      buffer.resize(n);
      return buffer;
    }
    std::vector<float> buffer = std::move(list.back());
    list.pop_back();
    stats_.bytes_cached -= ClassFloats(cls) * sizeof(float);
    ++stats_.hits;
    IMSR_COUNTER_ADD("memory/pool_hits", 1);
    // Within the reserved class capacity: resize never reallocates.
    buffer.resize(n);
    return buffer;
  }

  void Release(std::vector<float>&& buffer) {
    const int cls = ClassForCapacity(buffer.capacity());
    if (cls < 0) {
      ++stats_.bypass;
      std::vector<float>().swap(buffer);
      return;
    }
    auto& list = free_lists_[cls];
    const uint64_t bytes = ClassFloats(cls) * sizeof(float);
    if (list.size() >= kMaxBuffersPerClass ||
        stats_.bytes_cached + bytes > kMaxCachedBytesPerThread) {
      ++stats_.dropped;
      IMSR_COUNTER_ADD("memory/pool_dropped", 1);
      std::vector<float>().swap(buffer);
      return;
    }
    list.push_back(std::move(buffer));
    stats_.bytes_cached += bytes;
    ++stats_.releases;
    IMSR_COUNTER_ADD("memory/pool_releases", 1);
    IMSR_GAUGE_SET("memory/pool_bytes_cached",
                   static_cast<double>(stats_.bytes_cached));
  }

  void CountBypass() { ++stats_.bypass; }

  void Drain() {
    for (auto& list : free_lists_) list.clear();
    stats_.bytes_cached = 0;
  }

  const BufferPoolStats& stats() const { return stats_; }

 private:
  std::vector<std::vector<float>> free_lists_[kNumClasses];
  BufferPoolStats stats_;
};

Pool& LocalPool() {
  thread_local Pool pool;
  return pool;
}

}  // namespace

bool PoolCompiledIn() {
#if defined(IMSR_POOL_DISABLED)
  return false;
#else
  return true;
#endif
}

bool PoolEnabled() {
  return PoolCompiledIn() && EnabledFlag().load(std::memory_order_relaxed);
}

void SetPoolEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

std::vector<float> AcquireBuffer(size_t n) {
  if (n == 0) return {};
  if (!PoolEnabled() || t_pool_dead) return std::vector<float>(n);
  const int cls = ClassForRequest(n);
  if (cls < 0) {
    LocalPool().CountBypass();
    return std::vector<float>(n);
  }
  return LocalPool().Acquire(n, cls);
}

std::vector<float> AcquireZeroedBuffer(size_t n) {
  std::vector<float> buffer = AcquireBuffer(n);
  // A pooled buffer carries stale values; a heap vector is already zero,
  // but re-zeroing keeps the contract unconditional and cheap (memset).
  if (n > 0) std::memset(buffer.data(), 0, n * sizeof(float));
  return buffer;
}

void ReleaseBuffer(std::vector<float>&& buffer) {
  if (buffer.capacity() == 0) return;
  if (!PoolEnabled() || t_pool_dead) {
    std::vector<float>().swap(buffer);
    return;
  }
  LocalPool().Release(std::move(buffer));
}

BufferPoolStats LocalPoolStats() {
  if (t_pool_dead) return BufferPoolStats{};
  return LocalPool().stats();
}

void DrainLocalPool() {
  if (t_pool_dead) return;
  LocalPool().Drain();
}

}  // namespace imsr::util
