// Persistent worker pool for data-parallel loops. A ThreadPool keeps a
// fixed set of workers parked on a condition variable; ParallelFor chops
// [0, count) into fixed-size chunks that workers (and the calling thread)
// claim off an atomic counter. Compared to spawning std::threads per call
// (the old ParallelChunks), dispatch costs a wakeup instead of a clone().
//
// Determinism: chunk *boundaries* depend only on (count, grain), never on
// the number of threads, and every index is processed exactly once. Any
// kernel whose chunks write disjoint outputs (all of nn's row-parallel
// kernels, the evaluator's per-user ranking) therefore produces bitwise
// identical results for 1 and N threads.
#ifndef IMSR_UTIL_THREAD_POOL_H_
#define IMSR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/range_fn.h"

namespace imsr::util {

class Flags;

class ThreadPool {
 public:
  // Starts `threads - 1` workers (the caller participates in every
  // ParallelFor, so `threads <= 1` means a no-worker, fully inline pool).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Threads participating in a ParallelFor (workers + calling thread).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes fn(begin, end) over disjoint chunks of [0, count), each at
  // most `grain` long (grain <= 0 picks ~4 chunks per thread). Blocks
  // until every chunk ran, so the RangeFn's borrowed callable outlives
  // the region. Exceptions thrown by fn are rethrown here (first one
  // wins; remaining chunks are skipped). Nested calls from inside fn run
  // inline on the calling thread — safe, just serial.
  void ParallelFor(int64_t count, int64_t grain, RangeFn fn);

 private:
  // One parallel region. Heap-allocated and shared with workers so a slow
  // worker that wakes after the region retired only touches dead atomics,
  // never freed memory.
  struct Dispatch {
    RangeFn fn;
    int64_t count = 0;
    int64_t grain = 0;
    int64_t num_chunks = 0;
    std::atomic<int64_t> next_chunk{0};
    std::atomic<int64_t> done_chunks{0};
    std::atomic<bool> has_error{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };

  void WorkerLoop();
  void RunChunks(Dispatch& dispatch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;  // guards dispatch_, generation_, stop_
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Dispatch> dispatch_;
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::mutex caller_mutex_;  // serializes concurrent external callers
};

// Process-wide pool, created lazily with the configured thread count.
// Kernels in nn/ and eval/ dispatch large loops through this pool.
ThreadPool& GlobalPool();

// Resizes the process-wide pool (>= 1). Must not race with an in-flight
// ParallelFor on the pool; call it at configuration time.
void SetGlobalThreadCount(int threads);

// Current (or to-be-created) size of the process-wide pool.
int GlobalThreadCount();

// Applies the --threads=N command-line flag to the process-wide pool.
// Precedence: --threads flag > IMSR_THREADS env var > the CMake-time
// -DIMSR_THREADS default > hardware concurrency.
void ApplyThreadFlag(const Flags& flags);

}  // namespace imsr::util

#endif  // IMSR_UTIL_THREAD_POOL_H_
