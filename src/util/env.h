// Environment-variable parsing with one strict, shared semantics for the
// library's runtime toggles (IMSR_POOL, IMSR_SIMD, IMSR_FUSED_READOUT,
// IMSR_THREADS, ...):
//
//  * on/off toggles accept 1/true/on/yes and 0/false/off/no
//    (case-insensitive); anything else is malformed;
//  * integers are parsed with full-token std::from_chars — "4x" or "abc"
//    never silently become 4 or 0 (the std::atoi failure modes);
//  * a malformed or out-of-range value warns once on stderr and falls
//    back to the caller's default, so a typo degrades loudly instead of
//    silently flipping a feature.
//
// Unset variables return the default without a warning.
#ifndef IMSR_UTIL_ENV_H_
#define IMSR_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace imsr::util {

// Parsed state of one environment toggle.
enum class EnvParse {
  kUnset,      // variable absent -> default applies
  kParsed,     // well-formed value
  kMalformed,  // garbage value -> default applies (warning emitted)
};

// Boolean toggle. Returns `default_value` when `name` is unset or
// malformed. `outcome` (nullable) reports which case applied.
bool EnvEnabled(const char* name, bool default_value,
                EnvParse* outcome = nullptr);

// Integer knob. Full-token parse; values below `min_value` count as
// malformed (e.g. IMSR_THREADS=0). Returns `default_value` when unset or
// malformed.
int64_t EnvInt(const char* name, int64_t default_value,
               int64_t min_value = INT64_MIN, EnvParse* outcome = nullptr);

// Testing-only parsing cores (no getenv, no warning): exposed so the
// rejection path has direct unit coverage.
EnvParse ParseEnvBool(const std::string& text, bool* value);
EnvParse ParseEnvInt(const std::string& text, int64_t min_value,
                     int64_t* value);

}  // namespace imsr::util

#endif  // IMSR_UTIL_ENV_H_
