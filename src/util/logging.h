// Minimal leveled logger used across the library and the bench harnesses.
#ifndef IMSR_UTIL_LOGGING_H_
#define IMSR_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace imsr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one formatted log line to stderr (thread-safe via stdio locking).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

// Internal stream adapter behind the IMSR_LOG macro.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace imsr::util

#define IMSR_LOG(level)                                          \
  ::imsr::util::LogStream(::imsr::util::LogLevel::k##level,      \
                          __FILE__, __LINE__)

#endif  // IMSR_UTIL_LOGGING_H_
