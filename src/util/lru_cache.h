// LruCache — a byte-budgeted least-recently-used map, the storage behind
// the serve path's per-shard response cache (DESIGN.md §15).
//
// Eviction is by bytes, not entry count: every Put carries the caller's
// estimate of the entry's footprint, and inserts evict from the cold tail
// until the running total fits the budget again. A single entry larger
// than the whole budget is admitted and immediately becomes the only
// resident (then evicted by the next insert) — the cache never rejects,
// it only forgets.
//
// NOT thread-safe. Each serve shard owns one instance and touches it only
// from its worker thread; a shared cache would put a lock on the hot
// path for no benefit since shards already partition users.
#ifndef IMSR_UTIL_LRU_CACHE_H_
#define IMSR_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace imsr::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t byte_budget) : budget_(byte_budget) {
    IMSR_CHECK_GT(byte_budget, 0u);
  }

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  // Pointer to the cached value, or nullptr on miss. A hit moves the
  // entry to the warm end of the LRU order. The pointer is valid until
  // the next Put (which may evict it).
  const Value* Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->value;
  }

  // Inserts (or replaces) `key` at the warm end, charging `bytes` against
  // the budget, then evicts cold entries until the total fits again.
  void Put(const Key& key, Value value, size_t bytes) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      bytes_ += bytes;
      entries_.splice(entries_.begin(), entries_, it->second);
    } else {
      entries_.push_front(Entry{key, std::move(value), bytes});
      index_.emplace(key, entries_.begin());
      bytes_ += bytes;
    }
    while (bytes_ > budget_ && entries_.size() > 1) EvictColdest();
    // A single over-budget entry stays resident (see header comment); it
    // goes first when anything else arrives.
  }

  size_t bytes() const { return bytes_; }
  size_t budget() const { return budget_; }
  size_t entries() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    Key key;
    Value value;
    size_t bytes = 0;
  };

  void EvictColdest() {
    IMSR_CHECK(!entries_.empty());
    const Entry& cold = entries_.back();
    bytes_ -= cold.bytes;
    index_.erase(cold.key);
    entries_.pop_back();
    ++evictions_;
  }

  const size_t budget_;
  size_t bytes_ = 0;
  // Front = most recently used. The index maps keys to list iterators,
  // which std::list keeps stable across splices.
  std::list<Entry> entries_;
  std::unordered_map<Key, typename std::list<Entry>::iterator, Hash> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace imsr::util

#endif  // IMSR_UTIL_LRU_CACHE_H_
