// Binary (de)serialization for model checkpoints. Little-endian host
// assumed (x86/ARM); a magic header with a version guards format drift.
#ifndef IMSR_UTIL_SERIALIZATION_H_
#define IMSR_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace imsr::util {

// Append-only binary buffer writer.
class BinaryWriter {
 public:
  void WriteInt64(int64_t value);
  void WriteDouble(double value);
  void WriteFloat(float value);
  void WriteString(const std::string& value);
  void WriteFloatArray(const float* data, size_t count);

  const std::vector<uint8_t>& buffer() const { return buffer_; }

  // Writes the buffer to a file; returns false on I/O failure.
  bool WriteToFile(const std::string& path) const;

 private:
  void Append(const void* data, size_t size);
  std::vector<uint8_t> buffer_;
};

// Sequential reader over a byte buffer. Out-of-bounds reads abort (checked).
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> buffer);

  // Loads a file into a reader; returns false on I/O failure.
  static bool ReadFromFile(const std::string& path, BinaryReader* reader);

  int64_t ReadInt64();
  double ReadDouble();
  float ReadFloat();
  std::string ReadString();
  void ReadFloatArray(float* data, size_t count);

  bool AtEnd() const { return position_ == buffer_.size(); }

 private:
  void Consume(void* out, size_t size);
  std::vector<uint8_t> buffer_;
  size_t position_ = 0;
};

}  // namespace imsr::util

#endif  // IMSR_UTIL_SERIALIZATION_H_
