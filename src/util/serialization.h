// Binary (de)serialization for model checkpoints. Little-endian host
// assumed (x86/ARM); a magic header with a version guards format drift.
//
// Readers come in two flavours:
//   * TryRead* — fallible: returns false and records a descriptive error
//     (sticky; every later read also fails) instead of aborting. All code
//     that parses *external* bytes (checkpoint files) must use these.
//   * Read*    — contract-checked: aborts via IMSR_CHECK on malformed
//     input. Only for buffers the process itself just produced.
#ifndef IMSR_UTIL_SERIALIZATION_H_
#define IMSR_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace imsr::util {

// Append-only binary buffer writer.
class BinaryWriter {
 public:
  void WriteInt64(int64_t value);
  void WriteDouble(double value);
  void WriteFloat(float value);
  void WriteString(const std::string& value);
  void WriteFloatArray(const float* data, size_t count);
  void WriteBytes(const void* data, size_t size);

  const std::vector<uint8_t>& buffer() const { return buffer_; }

  // Writes the buffer to a file; returns false on I/O failure.
  bool WriteToFile(const std::string& path) const;

  // Durable atomic replace: writes to `path` + ".tmp", flushes and fsyncs,
  // then renames over `path`, so a crash at any point leaves either the
  // previous file or the new one — never a truncated mix. Returns false on
  // I/O failure; `error` (optional) receives a description.
  bool WriteToFileAtomic(const std::string& path,
                         std::string* error = nullptr) const;

 private:
  void Append(const void* data, size_t size);
  std::vector<uint8_t> buffer_;
};

// Sequential reader over a byte buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<uint8_t> buffer);

  // Loads a file into a reader; returns false on I/O failure.
  static bool ReadFromFile(const std::string& path, BinaryReader* reader);

  // Contract-checked reads: abort on truncated or malformed input.
  int64_t ReadInt64();
  double ReadDouble();
  float ReadFloat();
  std::string ReadString();
  void ReadFloatArray(float* data, size_t count);

  // Fallible reads: on truncation, a garbage length prefix, or a count
  // mismatch they record an error and return false without touching `out`
  // beyond what was already written. The error is sticky — after the first
  // failure every subsequent TryRead* fails too, so a parsing sequence can
  // check `ok()` once at the end.
  bool TryReadInt64(int64_t* out);
  bool TryReadDouble(double* out);
  bool TryReadFloat(float* out);
  bool TryReadString(std::string* out);
  bool TryReadFloatArray(float* data, size_t count);
  bool TryReadBytes(void* out, size_t size);
  // Advances past `size` bytes (e.g. an unknown section); fallible.
  bool TrySkip(size_t size);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  size_t position() const { return position_; }
  size_t remaining() const { return buffer_.size() - position_; }
  bool AtEnd() const { return position_ == buffer_.size(); }

  // The bytes at the current position (bounds already guaranteed by
  // `remaining()`); used to checksum a region before parsing it.
  const uint8_t* current() const { return buffer_.data() + position_; }

 private:
  // Records the first error and returns false.
  bool Fail(const std::string& message);

  std::vector<uint8_t> buffer_;
  size_t position_ = 0;
  std::string error_;
};

}  // namespace imsr::util

#endif  // IMSR_UTIL_SERIALIZATION_H_
