// Scalar math helpers shared by the model code and the analysis benches.
#ifndef IMSR_UTIL_MATH_UTIL_H_
#define IMSR_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace imsr::util {

// log(sum_i exp(x_i)) computed with the max-shift trick. Requires non-empty
// input.
double LogSumExp(const std::vector<double>& values);

// In-place softmax with the max-shift trick. Requires non-empty input.
void SoftmaxInPlace(std::vector<double>& values);

// Pearson correlation coefficient of two equally sized samples. Returns 0
// when either sample has zero variance. Requires size >= 2.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// Arithmetic mean; requires non-empty input.
double Mean(const std::vector<double>& values);

// Sample standard deviation; returns 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

// Euclidean norm.
double L2Norm(const std::vector<double>& values);

// Dot product; requires equal sizes.
double Dot(const std::vector<double>& x, const std::vector<double>& y);

// Cosine similarity; returns 0 if either vector is all-zero.
double CosineSimilarity(const std::vector<double>& x,
                        const std::vector<double>& y);

// Two-tailed paired t-test p-value approximation for equal-size samples.
// Uses a normal approximation of the t distribution (adequate for the
// repeat counts used in the benches). Returns 1.0 for degenerate inputs.
double PairedTTestPValue(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace imsr::util

#endif  // IMSR_UTIL_MATH_UTIL_H_
