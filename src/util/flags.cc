#include "util/flags.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>

#include "util/check.h"

namespace imsr::util {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    IMSR_CHECK(arg.rfind("--", 0) == 0)
        << "expected --name=value argument, got '" << arg << "'";
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& text = it->second;
  int64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  IMSR_CHECK(ec == std::errc() && ptr == end)
      << "flag --" << name << " expects an integer, got '" << text << "'";
  return value;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  IMSR_CHECK(!text.empty() && end == text.c_str() + text.size() &&
             errno != ERANGE)
      << "flag --" << name << " expects a number, got '" << text << "'";
  return value;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1";
}

}  // namespace imsr::util
