#include "util/flags.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace imsr::util {
namespace {

// Splits "--name=value" / "--name" into (name, value), value "true" when
// omitted. Returns false (and leaves the outputs alone) for tokens that
// are not flag-shaped.
bool SplitFlagToken(const std::string& arg, std::string* name,
                    std::string* value) {
  if (arg.rfind("--", 0) != 0) return false;
  const std::string body = arg.substr(2);
  const size_t eq = body.find('=');
  if (eq == std::string::npos) {
    *name = body;
    *value = "true";
  } else {
    *name = body.substr(0, eq);
    *value = body.substr(eq + 1);
  }
  return true;
}

// Levenshtein distance with early exit once every entry in the current
// row exceeds `limit` (flag names are short, so the O(n*m) DP is cheap).
size_t EditDistance(const std::string& a, const std::string& b,
                    size_t limit) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    size_t best = row[0];
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
      best = std::min(best, row[j]);
    }
    if (best > limit) return limit + 1;
  }
  return row[b.size()];
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string name;
    std::string value;
    IMSR_CHECK(SplitFlagToken(arg, &name, &value))
        << "expected --name=value argument, got '" << arg << "'";
    values_[name] = value;
  }
}

Flags::Flags(std::map<std::string, std::string> values)
    : values_(std::move(values)) {}

bool Flags::TryParse(int argc, char** argv, Flags* flags,
                     std::string* error) {
  std::map<std::string, std::string> values;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string name;
    std::string value;
    if (!SplitFlagToken(arg, &name, &value)) {
      if (error != nullptr) {
        *error = "expected --name=value argument, got '" + arg + "'";
      }
      return false;
    }
    values[name] = value;
  }
  *flags = Flags(std::move(values));
  return true;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  int64_t value = 0;
  std::string error;
  IMSR_CHECK(ParseFlagInt(name, it->second, &value, &error)) << error;
  return value;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  double value = 0.0;
  std::string error;
  IMSR_CHECK(ParseFlagDouble(name, it->second, &value, &error)) << error;
  return value;
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1";
}

bool ParseFlagInt(const std::string& name, const std::string& text,
                  int64_t* out, std::string* error) {
  int64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) {
    if (error != nullptr) {
      *error =
          "flag --" + name + " expects an integer, got '" + text + "'";
    }
    return false;
  }
  *out = value;
  return true;
}

bool ParseFlagDouble(const std::string& name, const std::string& text,
                     double* out, std::string* error) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    if (error != nullptr) {
      *error = "flag --" + name + " expects a number, got '" + text + "'";
    }
    return false;
  }
  *out = value;
  return true;
}

bool ParseFlagBool(const std::string& name, const std::string& text,
                   bool* out, std::string* error) {
  if (text == "true" || text == "1") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    *out = false;
    return true;
  }
  if (error != nullptr) {
    *error = "flag --" + name + " expects a boolean (true/false), got '" +
             text + "'";
  }
  return false;
}

std::string SuggestFlagName(const std::string& name,
                            const std::vector<std::string>& known) {
  // Tolerate more typos in longer names, but never suggest something
  // less than half-right.
  const size_t limit = std::max<size_t>(1, name.size() / 3);
  std::string best;
  size_t best_distance = limit + 1;
  for (const std::string& candidate : known) {
    const size_t d = EditDistance(name, candidate, limit);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

FlagSet::FlagSet(std::string program, std::string synopsis)
    : program_(std::move(program)), synopsis_(std::move(synopsis)) {}

FlagSet::Spec* FlagSet::Register(const std::string& name, Type type,
                                 const std::string& help) {
  IMSR_CHECK(index_.count(name) == 0)
      << "flag --" << name << " registered twice";
  index_[name] = specs_.size();
  Spec& spec = specs_.emplace_back();
  spec.name = name;
  spec.type = type;
  spec.help = help;
  return &spec;
}

void FlagSet::AddString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  Spec* spec = Register(name, Type::kString, help);
  spec->string_value = default_value;
  spec->default_text = default_value.empty() ? "\"\"" : default_value;
}

void FlagSet::AddInt(const std::string& name, int64_t default_value,
                     const std::string& help) {
  Spec* spec = Register(name, Type::kInt, help);
  spec->int_value = default_value;
  spec->default_text = std::to_string(default_value);
}

void FlagSet::AddDouble(const std::string& name, double default_value,
                        const std::string& help) {
  Spec* spec = Register(name, Type::kDouble, help);
  spec->double_value = default_value;
  std::ostringstream text;
  text << default_value;
  spec->default_text = text.str();
}

void FlagSet::AddBool(const std::string& name, bool default_value,
                      const std::string& help) {
  Spec* spec = Register(name, Type::kBool, help);
  spec->bool_value = default_value;
  spec->default_text = default_value ? "true" : "false";
}

bool FlagSet::Parse(int argc, char** argv, std::string* error) {
  std::map<std::string, std::string> raw;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    std::string name;
    std::string value;
    if (!SplitFlagToken(arg, &name, &value)) {
      if (error != nullptr) {
        *error = "expected --name=value argument, got '" + arg + "'";
      }
      return false;
    }
    auto it = index_.find(name);
    if (it == index_.end()) {
      if (error != nullptr) {
        std::vector<std::string> known;
        known.reserve(specs_.size());
        for (const Spec& spec : specs_) known.push_back(spec.name);
        const std::string suggestion = SuggestFlagName(name, known);
        *error = "unknown flag --" + name;
        if (!suggestion.empty()) {
          *error += " (did you mean --" + suggestion + "?)";
        }
      }
      return false;
    }
    Spec& spec = specs_[it->second];
    if (spec.set) {
      // Last-wins would silently mask the first value — in a shell
      // one-liner edited in place that is almost always a mistake.
      if (error != nullptr) {
        *error = "flag --" + name + " given more than once";
      }
      return false;
    }
    switch (spec.type) {
      case Type::kString:
        spec.string_value = value;
        break;
      case Type::kInt:
        if (!ParseFlagInt(name, value, &spec.int_value, error)) return false;
        break;
      case Type::kDouble:
        if (!ParseFlagDouble(name, value, &spec.double_value, error)) {
          return false;
        }
        break;
      case Type::kBool:
        if (!ParseFlagBool(name, value, &spec.bool_value, error)) {
          return false;
        }
        break;
    }
    spec.set = true;
    raw[name] = value;
  }
  view_ = Flags(std::move(raw));
  return true;
}

std::string FlagSet::HelpText() const {
  std::ostringstream out;
  out << "usage: " << program_ << " [--flag=value ...]\n";
  if (!synopsis_.empty()) out << "  " << synopsis_ << "\n";
  if (!specs_.empty()) out << "\nflags:\n";
  size_t width = 0;
  std::vector<std::string> labels;
  labels.reserve(specs_.size());
  for (const Spec& spec : specs_) {
    labels.push_back("--" + spec.name);
    width = std::max(width, labels.back().size());
  }
  for (size_t i = 0; i < specs_.size(); ++i) {
    const Spec& spec = specs_[i];
    out << "  " << labels[i]
        << std::string(width - labels[i].size() + 2, ' ') << spec.help
        << " (default: " << spec.default_text << ")\n";
  }
  return out.str();
}

const FlagSet::Spec* FlagSet::Find(const std::string& name) const {
  auto it = index_.find(name);
  IMSR_CHECK(it != index_.end())
      << "flag --" << name << " read but never registered";
  return &specs_[it->second];
}

bool FlagSet::Has(const std::string& name) const { return Find(name)->set; }

std::string FlagSet::GetString(const std::string& name) const {
  const Spec* spec = Find(name);
  IMSR_CHECK(spec->type == Type::kString)
      << "flag --" << name << " is not a string flag";
  return spec->string_value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  const Spec* spec = Find(name);
  IMSR_CHECK(spec->type == Type::kInt)
      << "flag --" << name << " is not an integer flag";
  return spec->int_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  const Spec* spec = Find(name);
  IMSR_CHECK(spec->type == Type::kDouble)
      << "flag --" << name << " is not a double flag";
  return spec->double_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  const Spec* spec = Find(name);
  IMSR_CHECK(spec->type == Type::kBool)
      << "flag --" << name << " is not a boolean flag";
  return spec->bool_value;
}

}  // namespace imsr::util
