// CSV writing and fixed-width console table rendering used by the bench
// harnesses to print paper-style tables.
#ifndef IMSR_UTIL_CSV_H_
#define IMSR_UTIL_CSV_H_

#include <string>
#include <vector>

namespace imsr::util {

// Accumulates rows and renders them either as CSV or as an aligned console
// table. All cells are strings; numeric formatting helpers are provided.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends one row; must match the header width.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  // Renders an aligned, pipe-separated console table.
  std::string ToPrettyString() const;

  // Renders RFC-4180-ish CSV (quotes cells containing separators).
  std::string ToCsv() const;

  // Writes ToCsv() to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with `digits` decimal places.
std::string FormatDouble(double value, int digits = 2);

// Formats a ratio as a percentage with `digits` decimals (no '%' sign, to
// match the paper's "numbers are percentages with % omitted" style).
std::string FormatPercent(double ratio, int digits = 2);

}  // namespace imsr::util

#endif  // IMSR_UTIL_CSV_H_
