#include "util/env.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace imsr::util {
namespace {

std::string ToLower(const std::string& text) {
  std::string lower = text;
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return lower;
}

void WarnMalformed(const char* name, const char* value,
                   const char* expected) {
  std::fprintf(stderr,
               "imsr: ignoring malformed %s='%s' (expected %s); using the "
               "default\n",
               name, value, expected);
}

}  // namespace

EnvParse ParseEnvBool(const std::string& text, bool* value) {
  const std::string lower = ToLower(text);
  if (lower == "1" || lower == "true" || lower == "on" || lower == "yes") {
    *value = true;
    return EnvParse::kParsed;
  }
  if (lower == "0" || lower == "false" || lower == "off" || lower == "no") {
    *value = false;
    return EnvParse::kParsed;
  }
  return EnvParse::kMalformed;
}

EnvParse ParseEnvInt(const std::string& text, int64_t min_value,
                     int64_t* value) {
  if (text.empty()) return EnvParse::kMalformed;
  int64_t parsed = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, parsed);
  if (ec != std::errc() || ptr != end || parsed < min_value) {
    return EnvParse::kMalformed;
  }
  *value = parsed;
  return EnvParse::kParsed;
}

bool EnvEnabled(const char* name, bool default_value, EnvParse* outcome) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) {
    if (outcome != nullptr) *outcome = EnvParse::kUnset;
    return default_value;
  }
  bool value = default_value;
  const EnvParse parse = ParseEnvBool(raw, &value);
  if (outcome != nullptr) *outcome = parse;
  if (parse == EnvParse::kMalformed) {
    WarnMalformed(name, raw, "1/true/on/yes or 0/false/off/no");
    return default_value;
  }
  return value;
}

int64_t EnvInt(const char* name, int64_t default_value, int64_t min_value,
               EnvParse* outcome) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) {
    if (outcome != nullptr) *outcome = EnvParse::kUnset;
    return default_value;
  }
  int64_t value = default_value;
  const EnvParse parse = ParseEnvInt(raw, min_value, &value);
  if (outcome != nullptr) *outcome = parse;
  if (parse == EnvParse::kMalformed) {
    WarnMalformed(name, raw, "an integer");
    return default_value;
  }
  return value;
}

}  // namespace imsr::util
