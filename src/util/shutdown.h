// Cooperative process shutdown: SIGINT / SIGTERM set a process-wide
// atomic flag that long-running loops (imsr_serve's acceptor, the
// stream service's producer) poll to drain and exit cleanly — queues are
// closed and drained, final obs exports run, and the process exits 0.
// A second signal while draining falls back to the default disposition,
// so a stuck drain can still be killed with a repeated Ctrl-C.
#ifndef IMSR_UTIL_SHUTDOWN_H_
#define IMSR_UTIL_SHUTDOWN_H_

#include <atomic>

namespace imsr::util {

// Installs the SIGINT/SIGTERM handlers (idempotent). The handler only
// stores to an atomic flag (async-signal-safe) and restores the default
// disposition for its own signal, so the next delivery terminates.
void InstallShutdownHandlers();

// The flag the handlers set. Loops hold this pointer and poll it; it
// never dangles (function-local static storage).
const std::atomic<bool>* ShutdownFlag();

bool ShutdownRequested();

// Sets / clears the flag without a signal (tests, and in-process
// triggers like a server's admin stop).
void RequestShutdown();
void ResetShutdownForTest();

}  // namespace imsr::util

#endif  // IMSR_UTIL_SHUTDOWN_H_
