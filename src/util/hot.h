// Hot-kernel optimization attributes. A handful of saxpy-shaped inner
// loops (MatMulRows, MatMulTransARank1, the SIMD kernels in nn/tensor.cc)
// want -O3's vectorizer even in the default -O2 build — strict IEEE, no
// -ffast-math, so results stay deterministic. The raw
// `#pragma GCC push_options / optimize("O3")` spelling is GCC-only:
// clang defines __GNUC__ too but ignores those pragmas (with a warning
// under -Weverything), so the blocks are wrapped in a macro that expands
// to nothing on other compilers instead of being silently half-honoured.
//
// Usage:
//   IMSR_HOT_BEGIN
//   void Kernel(...) { ... }
//   IMSR_HOT_END
#ifndef IMSR_UTIL_HOT_H_
#define IMSR_UTIL_HOT_H_

#if defined(__GNUC__) && !defined(__clang__)
#define IMSR_HOT_BEGIN \
  _Pragma("GCC push_options") _Pragma("GCC optimize(\"O3\")")
#define IMSR_HOT_END _Pragma("GCC pop_options")
#else
// Clang (and anything else): per-function optimization pragmas are not
// portable; rely on the build-level flags plus the omp simd annotations
// (nn/simd.h), which clang honours under -fopenmp-simd at any -O level.
#define IMSR_HOT_BEGIN
#define IMSR_HOT_END
#endif

#endif  // IMSR_UTIL_HOT_H_
