#include "util/serialization.h"

#include <cstring>
#include <fstream>

#include "util/check.h"

namespace imsr::util {

void BinaryWriter::Append(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void BinaryWriter::WriteInt64(int64_t value) { Append(&value, sizeof(value)); }

void BinaryWriter::WriteDouble(double value) { Append(&value, sizeof(value)); }

void BinaryWriter::WriteFloat(float value) { Append(&value, sizeof(value)); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteInt64(static_cast<int64_t>(value.size()));
  Append(value.data(), value.size());
}

void BinaryWriter::WriteFloatArray(const float* data, size_t count) {
  WriteInt64(static_cast<int64_t>(count));
  Append(data, count * sizeof(float));
}

bool BinaryWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  return static_cast<bool>(out);
}

BinaryReader::BinaryReader(std::vector<uint8_t> buffer)
    : buffer_(std::move(buffer)) {}

bool BinaryReader::ReadFromFile(const std::string& path,
                                BinaryReader* reader) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> buffer(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(buffer.data()), size);
  if (!in) return false;
  *reader = BinaryReader(std::move(buffer));
  return true;
}

void BinaryReader::Consume(void* out, size_t size) {
  IMSR_CHECK_LE(position_ + size, buffer_.size()) << "truncated buffer";
  std::memcpy(out, buffer_.data() + position_, size);
  position_ += size;
}

int64_t BinaryReader::ReadInt64() {
  int64_t value = 0;
  Consume(&value, sizeof(value));
  return value;
}

double BinaryReader::ReadDouble() {
  double value = 0;
  Consume(&value, sizeof(value));
  return value;
}

float BinaryReader::ReadFloat() {
  float value = 0;
  Consume(&value, sizeof(value));
  return value;
}

std::string BinaryReader::ReadString() {
  const int64_t size = ReadInt64();
  IMSR_CHECK_GE(size, 0);
  std::string value(static_cast<size_t>(size), '\0');
  Consume(value.data(), value.size());
  return value;
}

void BinaryReader::ReadFloatArray(float* data, size_t count) {
  const int64_t stored = ReadInt64();
  IMSR_CHECK_EQ(static_cast<size_t>(stored), count)
      << "float array size mismatch";
  Consume(data, count * sizeof(float));
}

}  // namespace imsr::util
