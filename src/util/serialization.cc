#include "util/serialization.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/check.h"

namespace imsr::util {

void BinaryWriter::Append(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

void BinaryWriter::WriteInt64(int64_t value) { Append(&value, sizeof(value)); }

void BinaryWriter::WriteDouble(double value) { Append(&value, sizeof(value)); }

void BinaryWriter::WriteFloat(float value) { Append(&value, sizeof(value)); }

void BinaryWriter::WriteString(const std::string& value) {
  WriteInt64(static_cast<int64_t>(value.size()));
  Append(value.data(), value.size());
}

void BinaryWriter::WriteFloatArray(const float* data, size_t count) {
  WriteInt64(static_cast<int64_t>(count));
  Append(data, count * sizeof(float));
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  Append(data, size);
}

bool BinaryWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  return static_cast<bool>(out);
}

bool BinaryWriter::WriteToFileAtomic(const std::string& path,
                                     std::string* error) const {
  const std::string tmp = path + ".tmp";
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what + " " + tmp + ": " + std::strerror(errno);
    }
    return false;
  };
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("cannot open");
  size_t written = 0;
  while (written < buffer_.size()) {
    const ssize_t n =
        ::write(fd, buffer_.data() + written, buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return fail("cannot write");
    }
    written += static_cast<size_t>(n);
  }
  // The data must be on disk before the rename publishes it; otherwise a
  // crash could leave the *new* name pointing at a truncated file.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail("cannot fsync");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return fail("cannot close");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    if (error != nullptr) {
      *error = "cannot rename " + tmp + " over " + path + ": " +
               std::strerror(errno);
    }
    return false;
  }
  // Best-effort directory fsync so the rename itself is durable.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

BinaryReader::BinaryReader(std::vector<uint8_t> buffer)
    : buffer_(std::move(buffer)) {}

bool BinaryReader::ReadFromFile(const std::string& path,
                                BinaryReader* reader) {
  // Only regular files: directories open successfully on Linux but report
  // a garbage tellg() size (historically cast straight into a huge
  // allocation here).
  struct stat file_info;
  if (::stat(path.c_str(), &file_info) != 0 ||
      !S_ISREG(file_info.st_mode)) {
    return false;
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return false;
  const std::streamsize size = in.tellg();
  // tellg() reports -1 on a stream error; casting that to size_t would
  // request a near-SIZE_MAX allocation.
  if (size < 0) return false;
  in.seekg(0);
  std::vector<uint8_t> buffer(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(buffer.data()), size);
  if (!in) return false;
  *reader = BinaryReader(std::move(buffer));
  return true;
}

bool BinaryReader::Fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message + " (at byte " + std::to_string(position_) + " of " +
             std::to_string(buffer_.size()) + ")";
  }
  return false;
}

bool BinaryReader::TryReadBytes(void* out, size_t size) {
  if (!ok()) return false;
  // remaining() cannot wrap; comparing against it avoids the
  // `position_ + size` overflow a corrupt near-SIZE_MAX length would hit.
  if (size > remaining()) {
    return Fail("truncated buffer: need " + std::to_string(size) +
                " bytes, " + std::to_string(remaining()) + " remain");
  }
  std::memcpy(out, buffer_.data() + position_, size);
  position_ += size;
  return true;
}

bool BinaryReader::TrySkip(size_t size) {
  if (!ok()) return false;
  if (size > remaining()) {
    return Fail("truncated buffer: cannot skip " + std::to_string(size) +
                " bytes, " + std::to_string(remaining()) + " remain");
  }
  position_ += size;
  return true;
}

bool BinaryReader::TryReadInt64(int64_t* out) {
  return TryReadBytes(out, sizeof(*out));
}

bool BinaryReader::TryReadDouble(double* out) {
  return TryReadBytes(out, sizeof(*out));
}

bool BinaryReader::TryReadFloat(float* out) {
  return TryReadBytes(out, sizeof(*out));
}

bool BinaryReader::TryReadString(std::string* out) {
  int64_t size = 0;
  if (!TryReadInt64(&size)) return false;
  // Reject garbage lengths before allocating: a valid string can never be
  // longer than the bytes left in the buffer.
  if (size < 0 || static_cast<uint64_t>(size) > remaining()) {
    return Fail("corrupt string length " + std::to_string(size));
  }
  out->assign(reinterpret_cast<const char*>(buffer_.data() + position_),
              static_cast<size_t>(size));
  position_ += static_cast<size_t>(size);
  return true;
}

bool BinaryReader::TryReadFloatArray(float* data, size_t count) {
  int64_t stored = 0;
  if (!TryReadInt64(&stored)) return false;
  if (stored < 0 || static_cast<uint64_t>(stored) != count) {
    return Fail("float array size mismatch: stored " +
                std::to_string(stored) + ", expected " +
                std::to_string(count));
  }
  if (count > remaining() / sizeof(float)) {
    return Fail("truncated float array: " + std::to_string(count) +
                " floats do not fit in " + std::to_string(remaining()) +
                " bytes");
  }
  return TryReadBytes(data, count * sizeof(float));
}

int64_t BinaryReader::ReadInt64() {
  int64_t value = 0;
  IMSR_CHECK(TryReadInt64(&value)) << error_;
  return value;
}

double BinaryReader::ReadDouble() {
  double value = 0;
  IMSR_CHECK(TryReadDouble(&value)) << error_;
  return value;
}

float BinaryReader::ReadFloat() {
  float value = 0;
  IMSR_CHECK(TryReadFloat(&value)) << error_;
  return value;
}

std::string BinaryReader::ReadString() {
  std::string value;
  IMSR_CHECK(TryReadString(&value)) << error_;
  return value;
}

void BinaryReader::ReadFloatArray(float* data, size_t count) {
  IMSR_CHECK(TryReadFloatArray(data, count)) << error_;
}

}  // namespace imsr::util
