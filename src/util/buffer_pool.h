// Size-class buffer pool backing nn::Tensor storage. Training builds and
// tears down thousands of small tensors per optimizer step; recycling
// their float buffers through thread-local free lists turns steady-state
// allocation into a pop/push on a vector, with the heap touched only
// during warm-up (see DESIGN.md section 10).
//
// Buffers are keyed by power-of-two capacity class (64 floats up to 16M
// floats); anything larger bypasses the pool. Each thread owns its free
// lists outright — acquire and release never synchronise — and a buffer
// released on one thread is simply cached there, so cross-thread traffic
// is safe, just not shared.
//
// Escape hatch: -DIMSR_POOL=OFF at CMake time (defines
// IMSR_POOL_DISABLED) or IMSR_POOL=off in the environment reverts every
// acquire to a plain heap vector for A/B runs and leak triage. Pooled
// buffers hold the same values a fresh vector would (callers zero or
// fully overwrite them), so results are bitwise identical either way.
#ifndef IMSR_UTIL_BUFFER_POOL_H_
#define IMSR_UTIL_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace imsr::util {

// Per-thread pool statistics. Counters are cumulative for the calling
// thread; bytes_cached is the current cached capacity. Kept inside the
// pool (not the obs registry) so tests can assert on them in
// -DIMSR_OBS=OFF builds; the obs layer mirrors them as memory/* metrics.
struct BufferPoolStats {
  uint64_t hits = 0;      // acquires served from a cached buffer
  uint64_t misses = 0;    // acquires that fell through to the heap
  uint64_t releases = 0;  // buffers returned to the free lists
  uint64_t dropped = 0;   // returned buffers freed (class/byte caps)
  uint64_t bypass = 0;    // requests outside the pooled size range
  uint64_t bytes_cached = 0;
};

// False when the pool was compiled out with -DIMSR_POOL=OFF.
bool PoolCompiledIn();

// True when pooling is compiled in and currently enabled (IMSR_POOL env
// var honoured once at first use; SetPoolEnabled overrides afterwards).
bool PoolEnabled();

// Runtime toggle, used by tests and the bench runner for in-process A/B.
// Has no effect when the pool is compiled out. Affects subsequent
// acquires only; buffers already handed out release normally.
void SetPoolEnabled(bool enabled);

// Returns a buffer with size() == n. Contents are unspecified when served
// from the pool (zero-filled when the pool is off or bypassed, because a
// fresh std::vector is). Callers must zero or fully overwrite.
std::vector<float> AcquireBuffer(size_t n);

// Returns a zero-filled buffer with size() == n.
std::vector<float> AcquireZeroedBuffer(size_t n);

// Returns a buffer to the calling thread's pool (or frees it when the
// pool is off, full, or the size is out of range). The argument is left
// empty either way.
void ReleaseBuffer(std::vector<float>&& buffer);

// Statistics of the calling thread's pool.
BufferPoolStats LocalPoolStats();

// Frees every buffer cached by the calling thread and zeroes bytes_cached
// (cumulative counters are kept). Tests use this to start from a cold
// pool.
void DrainLocalPool();

}  // namespace imsr::util

#endif  // IMSR_UTIL_BUFFER_POOL_H_
