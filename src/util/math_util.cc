#include "util/math_util.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace imsr::util {

double LogSumExp(const std::vector<double>& values) {
  IMSR_CHECK(!values.empty());
  const double max_value = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (double v : values) total += std::exp(v - max_value);
  return max_value + std::log(total);
}

void SoftmaxInPlace(std::vector<double>& values) {
  IMSR_CHECK(!values.empty());
  const double max_value = *std::max_element(values.begin(), values.end());
  double total = 0.0;
  for (double& v : values) {
    v = std::exp(v - max_value);
    total += v;
  }
  for (double& v : values) v /= total;
}

double Mean(const std::vector<double>& values) {
  IMSR_CHECK(!values.empty());
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double L2Norm(const std::vector<double>& values) {
  double ss = 0.0;
  for (double v : values) ss += v * v;
  return std::sqrt(ss);
}

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  IMSR_CHECK_EQ(x.size(), y.size());
  double total = 0.0;
  for (size_t i = 0; i < x.size(); ++i) total += x[i] * y[i];
  return total;
}

double CosineSimilarity(const std::vector<double>& x,
                        const std::vector<double>& y) {
  const double nx = L2Norm(x);
  const double ny = L2Norm(y);
  if (nx == 0.0 || ny == 0.0) return 0.0;
  return Dot(x, y) / (nx * ny);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  IMSR_CHECK_EQ(x.size(), y.size());
  IMSR_CHECK_GE(x.size(), 2u);
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double PairedTTestPValue(const std::vector<double>& a,
                         const std::vector<double>& b) {
  IMSR_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) return 1.0;
  std::vector<double> diff(n);
  for (size_t i = 0; i < n; ++i) diff[i] = a[i] - b[i];
  const double mean = Mean(diff);
  const double sd = StdDev(diff);
  if (sd == 0.0) return mean == 0.0 ? 1.0 : 0.0;
  const double t = mean / (sd / std::sqrt(static_cast<double>(n)));
  // Two-tailed p via the normal approximation Phi(-|t|) * 2.
  const double p = std::erfc(std::fabs(t) / std::sqrt(2.0));
  return p;
}

}  // namespace imsr::util
