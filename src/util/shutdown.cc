#include "util/shutdown.h"

#include <csignal>

namespace imsr::util {
namespace {

std::atomic<bool>& Flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

extern "C" void HandleShutdownSignal(int signum) {
  Flag().store(true, std::memory_order_relaxed);
  // One signal asks for a drain; a second one should actually kill a
  // process whose drain is stuck.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void InstallShutdownHandlers() {
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
}

const std::atomic<bool>* ShutdownFlag() { return &Flag(); }

bool ShutdownRequested() {
  return Flag().load(std::memory_order_relaxed);
}

void RequestShutdown() { Flag().store(true, std::memory_order_relaxed); }

void ResetShutdownForTest() {
  Flag().store(false, std::memory_order_relaxed);
}

}  // namespace imsr::util
