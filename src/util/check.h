// Contract-checking macros. The project builds without exceptions in hot
// paths; programming errors abort with a diagnostic instead.
#ifndef IMSR_UTIL_CHECK_H_
#define IMSR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace imsr::util {

// Aborts the process after printing `message` with source location.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "IMSR_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

// Stream collector so call sites can write IMSR_CHECK(x) << "context".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace imsr::util

// Always-on invariant check. Evaluates `condition` exactly once.
#define IMSR_CHECK(condition)                                       \
  if (condition) {                                                  \
  } else /* NOLINT */                                               \
    ::imsr::util::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define IMSR_CHECK_EQ(a, b) IMSR_CHECK((a) == (b))
#define IMSR_CHECK_NE(a, b) IMSR_CHECK((a) != (b))
#define IMSR_CHECK_LT(a, b) IMSR_CHECK((a) < (b))
#define IMSR_CHECK_LE(a, b) IMSR_CHECK((a) <= (b))
#define IMSR_CHECK_GT(a, b) IMSR_CHECK((a) > (b))
#define IMSR_CHECK_GE(a, b) IMSR_CHECK((a) >= (b))

// Debug-only check, compiled out in NDEBUG builds.
#ifdef NDEBUG
#define IMSR_DCHECK(condition) \
  if (true) {                  \
  } else /* NOLINT */          \
    ::imsr::util::CheckMessageBuilder(__FILE__, __LINE__, #condition)
#else
#define IMSR_DCHECK(condition) IMSR_CHECK(condition)
#endif

#endif  // IMSR_UTIL_CHECK_H_
